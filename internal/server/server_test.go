package server

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/incremental"
	"strudel/internal/sitegen"
	"strudel/internal/struql"
	"strudel/internal/telemetry"
	"strudel/internal/template"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestStaticServer(t *testing.T) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "<h1>Home</h1>"},
		"a.html":     {Path: "a.html", HTML: "<h1>A</h1>"},
	}}
	srv := httptest.NewServer(Static(site))
	defer srv.Close()
	if code, body := get(t, srv, "/"); code != 200 || body != "<h1>Home</h1>" {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, body := get(t, srv, "/a.html"); code != 200 || body != "<h1>A</h1>" {
		t.Errorf("/a.html = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/missing.html"); code != 404 {
		t.Errorf("missing = %d", code)
	}
}

func TestStaticServerListingWithoutIndex(t *testing.T) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"a.html": {Path: "a.html", HTML: "A"},
	}}
	srv := httptest.NewServer(Static(site))
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, `href="/a.html"`) {
		t.Errorf("listing = %d %q", code, body)
	}
}

func dynamicRenderer(t *testing.T) *incremental.Renderer {
	t.Helper()
	r, _ := dynamicRendererAndGraph(t)
	return r
}

func dynamicRendererAndGraph(t *testing.T) (*incremental.Renderer, *graph.Graph) {
	t.Helper()
	res, err := datadef.Parse("G", `
collection Publications { }
object pub1 in Publications { title "Alpha" year 1997 }
object pub2 in Publications { title "Beta" year 1998 }
`)
	if err != nil {
		t.Fatal(err)
	}
	q := struql.MustParse(`
INPUT G
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Year" -> y,
     RootPage() -> "YearPage" -> YearPage(y)`)
	d := incremental.Decompose(q, res.Graph, nil)
	return &incremental.Renderer{
		Dec: d,
		Templates: map[string]*template.Template{
			"RootPage": template.MustParse("RootPage", `<h1>Years</h1><SFMT_UL YearPage ORDER=ascend KEY=Year>`),
			"YearPage": template.MustParse("YearPage", `<h1>Year <SFMT Year></h1>`),
		},
	}, res.Graph
}

func TestDynamicServerClickThrough(t *testing.T) {
	srv := httptest.NewServer(Dynamic(dynamicRenderer(t), "Roots"))
	defer srv.Close()
	// Root renders with links to year pages.
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "<h1>Years</h1>") {
		t.Fatalf("/ = %d %q", code, body)
	}
	if !strings.Contains(body, "/page/YearPage%281997%29") {
		t.Errorf("root missing year link: %q", body)
	}
	// Click through to a year page (computed at click time).
	code, body = get(t, srv, "/page/YearPage%281997%29")
	if code != 200 || !strings.Contains(body, "<h1>Year 1997</h1>") {
		t.Errorf("year page = %d %q", code, body)
	}
	// Unknown (undiscovered) pages are 404.
	if code, _ := get(t, srv, "/page/YearPage%282050%29"); code != 404 {
		t.Errorf("undiscovered page = %d", code)
	}
	if code, _ := get(t, srv, "/nosuch"); code != 404 {
		t.Errorf("bad path = %d", code)
	}
}

func TestDynamicServerCachesPages(t *testing.T) {
	r := dynamicRenderer(t)
	srv := httptest.NewServer(Dynamic(r, "Roots"))
	defer srv.Close()
	get(t, srv, "/")
	get(t, srv, "/page/YearPage%281997%29")
	first := r.Dec.Stats()
	get(t, srv, "/page/YearPage%281997%29")
	second := r.Dec.Stats()
	if second.CacheHits <= first.CacheHits {
		t.Errorf("stats = %+v -> %+v", first, second)
	}
}

// brokenRenderer builds a renderer whose root is computable but whose
// page queries fail at click time (the planner errors on any seeded
// conjunction), so RenderPage returns an error.
func brokenRenderer(t *testing.T) *incremental.Renderer {
	t.Helper()
	r, g := dynamicRendererAndGraph(t)
	r.Dec.UsePlanner(func(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
		if seed == nil {
			// Roots still computes, so "/" reaches the render path.
			return struql.EvalBindings(g, struql.NewRegistry(), conds, nil)
		}
		return nil, errors.New("synthetic render failure: secret-detail")
	})
	return r
}

// TestDynamicServerRenderErrorIs500 checks that a render failure
// produces a generic 500 page — the error detail must not leak into
// the response body — and is counted in the telemetry registry.
func TestDynamicServerRenderErrorIs500(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := httptest.NewServer(DynamicWith(brokenRenderer(t), "Roots", reg))
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != 500 {
		t.Fatalf("/ = %d %q", code, body)
	}
	if strings.Contains(body, "unbound") || strings.Contains(body, "BadPage") {
		t.Errorf("error detail leaked into response: %q", body)
	}
	if !strings.Contains(body, "internal error") {
		t.Errorf("missing generic error page: %q", body)
	}
	c := reg.Counter("strudel_http_internal_errors_total",
		"Requests that failed with an internal error, by serving mode.",
		"mode", "dynamic")
	if c.Value() != 1 {
		t.Errorf("internal error counter = %d, want 1", c.Value())
	}
}

// TestInstrumentAndMetricsEndpoint drives an instrumented static
// server and checks the registered series appear on /metrics.
func TestInstrumentAndMetricsEndpoint(t *testing.T) {
	site := &sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "<h1>Home</h1>"},
	}}
	reg := telemetry.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/", Instrument(reg, "static", Static(site)))
	AttachDebug(mux, reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, _ := get(t, srv, "/"); code != 200 {
		t.Fatalf("/ = %d", code)
	}
	if code, _ := get(t, srv, "/missing.html"); code != 404 {
		t.Fatalf("missing = %d", code)
	}
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`strudel_http_requests_total{class="2xx",mode="static"} 1`,
		`strudel_http_requests_total{class="4xx",mode="static"} 1`,
		`strudel_http_request_seconds_count{mode="static"} 2`,
		`strudel_http_request_seconds_bucket{mode="static",le="+Inf"} 2`,
		`strudel_http_inflight_requests{mode="static"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := get(t, srv, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestQueryHandler(t *testing.T) {
	res, err := datadef.Parse("site", `
collection Pages { }
object home in Pages { title "Home" kind "page" }
object about in Pages { title "About" kind "page" link home }
`)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(QueryHandler(res.Graph, nil, 0))
	defer srv.Close()

	// The empty query serves the form.
	code, body := get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "<form") {
		t.Errorf("form = %d %q", code, body)
	}
	// A collect query renders results.
	q := url.QueryEscape(`WHERE Pages(p), p -> "title" -> v COLLECT Titles(v)`)
	code, body = get(t, srv, "/?q="+q)
	if code != 200 || !strings.Contains(body, "Home") || !strings.Contains(body, "About") {
		t.Errorf("results = %d %q", code, body)
	}
	// A regular-path-expression query over the site.
	q = url.QueryEscape(`WHERE Pages(p), p -> * -> q2, Pages(q2) COLLECT Reachable(q2)`)
	if code, body = get(t, srv, "/?q="+q); code != 200 || !strings.Contains(body, "home") {
		t.Errorf("path query = %d %q", code, body)
	}
	// Mutating queries are rejected.
	q = url.QueryEscape(`WHERE Pages(p) CREATE F(p) LINK F(p) -> "x" -> p`)
	if code, _ = get(t, srv, "/?q="+q); code != 400 {
		t.Errorf("mutating query = %d", code)
	}
	// Parse errors are 400.
	if code, _ = get(t, srv, "/?q="+url.QueryEscape("WHERE (((")); code != 400 {
		t.Errorf("bad query = %d", code)
	}
	// Runaway queries hit the binding cap.
	srvTight := httptest.NewServer(QueryHandler(res.Graph, nil, 2))
	defer srvTight.Close()
	q = url.QueryEscape(`WHERE Pages(p), p -> a -> v COLLECT Out(v)`)
	if code, _ = get(t, srvTight, "/?q="+q); code != 422 {
		t.Errorf("capped query = %d", code)
	}
	// Queries with no collect clauses say so.
	q = url.QueryEscape(`WHERE Pages(p), p -> "title" -> v`)
	if code, body = get(t, srv, "/?q="+q); code != 200 || !strings.Contains(body, "nothing to show") {
		t.Errorf("collectless = %d %q", code, body)
	}
}

// TestRecoverMiddleware: a panicking handler answers 500 and the
// process (and counter) survive.
func TestRecoverMiddleware(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := Recover(reg, "dynamic", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("template bug: nil deref in SFMT")
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv, "/boom")
	if code != 500 || strings.Contains(body, "SFMT") {
		t.Fatalf("/boom = %d %q", code, body)
	}
	// Other pages still render after the panic.
	if code, body := get(t, srv, "/fine"); code != 200 || body != "ok" {
		t.Errorf("/fine = %d %q", code, body)
	}
	c := reg.Counter("strudel_http_panics_total",
		"Requests that panicked and were recovered, by serving mode.", "mode", "dynamic")
	if c.Value() != 1 {
		t.Errorf("panic counter = %d", c.Value())
	}
}

// TestShedMiddleware: with max in-flight reached, new requests get an
// immediate 503 with Retry-After instead of queueing.
func TestShedMiddleware(t *testing.T) {
	reg := telemetry.NewRegistry()
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	h := Shed(reg, "dynamic", 2, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Fill both slots.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/")
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	<-entered
	<-entered
	// The third request is shed, not queued.
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("over-limit request = %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != 200 {
			t.Errorf("in-flight request = %d", code)
		}
	}
	c := reg.Counter("strudel_http_shed_total",
		"Requests rejected with 503 because max in-flight was reached, by serving mode.",
		"mode", "dynamic")
	if c.Value() != 1 {
		t.Errorf("shed counter = %d", c.Value())
	}
}

// hangingRenderer returns a renderer whose page computation blocks
// until the returned channel is closed (the planner never returns).
func hangingRenderer(t *testing.T) (*incremental.Renderer, chan struct{}) {
	t.Helper()
	r, g := dynamicRendererAndGraph(t)
	gate := make(chan struct{})
	r.Dec.UsePlanner(func(conds []struql.Condition, seed []struql.Binding) ([]struql.Binding, error) {
		if seed == nil {
			return struql.EvalBindings(g, struql.NewRegistry(), conds, nil)
		}
		<-gate
		return struql.EvalBindings(g, struql.NewRegistry(), conds, seed)
	})
	return r, gate
}

// TestDynamicRenderDeadline: a page whose click-time query hangs
// answers 504 at the render deadline instead of pinning the
// connection, and the server keeps answering subsequent requests.
func TestDynamicRenderDeadline(t *testing.T) {
	reg := telemetry.NewRegistry()
	r, gate := hangingRenderer(t)
	defer close(gate)
	h := DynamicFrom(func() *incremental.Renderer { return r }, "Roots",
		DynamicConfig{Registry: reg, RenderTimeout: 20 * time.Millisecond})
	srv := httptest.NewServer(h)
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != 504 {
		t.Fatalf("hanging root render = %d %q, want 504", code, body)
	}
	// The deadline freed the connection: the server still answers.
	if code, _ := get(t, srv, "/"); code != 504 {
		t.Fatalf("second request = %d, want 504", code)
	}
	c := reg.Counter("strudel_http_render_timeouts_total",
		"Dynamic renders abandoned at the render deadline, by serving mode.", "mode", "dynamic")
	if c.Value() != 2 {
		t.Errorf("timeout counter = %d", c.Value())
	}
}

// TestServeUntilGracefulShutdown: ServeUntil answers requests until
// stop fires, then shuts down cleanly and returns nil.
func TestServeUntilGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	srv := NewServer(addr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("up"))
	}))
	if srv.ReadHeaderTimeout == 0 || srv.IdleTimeout == 0 {
		t.Fatal("NewServer must set real timeouts")
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- ServeUntil(srv, stop, time.Second) }()
	// Wait for the listener to come up.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/")
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestStaticFromSwapsAtomically: swapping the site pointer mid-serving
// switches responses without restart.
func TestStaticFromSwapsAtomically(t *testing.T) {
	var cur atomic.Pointer[sitegen.Site]
	cur.Store(&sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "v1"},
	}})
	srv := httptest.NewServer(StaticFrom(cur.Load))
	defer srv.Close()
	if _, body := get(t, srv, "/"); body != "v1" {
		t.Fatalf("body = %q", body)
	}
	cur.Store(&sitegen.Site{Pages: map[string]*sitegen.Page{
		"index.html": {Path: "index.html", HTML: "v2"},
	}})
	if _, body := get(t, srv, "/"); body != "v2" {
		t.Fatalf("after swap body = %q", body)
	}
}
