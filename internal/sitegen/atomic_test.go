package sitegen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"strudel/internal/fsx"
	"strudel/internal/graph"
)

func siteWith(pages map[string]string) *Site {
	s := &Site{Pages: map[string]*Page{}, PathOf: map[graph.OID]string{}}
	for path, html := range pages {
		s.Pages[path] = &Page{Path: path, HTML: html}
	}
	return s
}

// TestWriteToAtomicUnderConcurrentReads rewrites one page many times
// while a reader re-reads the file: with temp+rename per page the
// reader must always observe a complete old or new version, never a
// truncated prefix or a mix of the two. Before this suite, WriteTo
// used a plain os.WriteFile, which exposes partial content.
func TestWriteToAtomicUnderConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	const rounds = 200
	version := func(i int) string {
		// Large enough that a truncated write is observable.
		return fmt.Sprintf("<html>v%04d %s</html>", i, strings.Repeat("x", 4096))
	}
	if err := siteWith(map[string]string{"p.html": version(0)}).WriteTo(dir); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		want := len(version(0))
		for {
			select {
			case <-stop:
				return
			default:
			}
			data, err := os.ReadFile(filepath.Join(dir, "p.html"))
			if err != nil {
				// The rename window never unlinks the target; any
				// read error is a violation.
				errs <- fmt.Errorf("reader: %w", err)
				return
			}
			if len(data) != want || !strings.HasPrefix(string(data), "<html>v") || !strings.HasSuffix(string(data), "</html>") {
				errs <- fmt.Errorf("torn page observed: %d bytes, %.40q…", len(data), data)
				return
			}
		}
	}()
	for i := 1; i <= rounds; i++ {
		if err := siteWith(map[string]string{"p.html": version(i)}).WriteTo(dir); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWriteToFSDeterministicOps locks down the sorted write order the
// fault-injection sweep depends on.
func TestWriteToFSDeterministicOps(t *testing.T) {
	pages := map[string]string{"b.html": "B", "a.html": "A", "index.html": "I"}
	journal := func() []string {
		dir := t.TempDir()
		f := fsx.NewFaultFS(fsx.OS)
		if err := siteWith(pages).WriteToFS(f, dir); err != nil {
			t.Fatal(err)
		}
		j := f.Journal()
		for i := range j {
			j[i] = strings.ReplaceAll(j[i], dir, "$DIR")
		}
		return j
	}
	a, b := journal(), journal()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("op order not deterministic:\n%s\nvs\n%s", strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	// Sorted page order: a.html before b.html before index.html.
	var seq []string
	for _, line := range a {
		if strings.Contains(line, "rename") {
			seq = append(seq, line)
		}
	}
	if len(seq) != 3 || !strings.Contains(seq[0], "a.html") || !strings.Contains(seq[1], "b.html") || !strings.Contains(seq[2], "index.html") {
		t.Fatalf("pages not written in sorted order: %v", seq)
	}
}

// TestSyncToFSPrunesStaleAndTemp verifies SyncTo removes stale pages
// and interrupted-write remnants but leaves user assets alone.
func TestSyncToFSPrunesStaleAndTemp(t *testing.T) {
	dir := t.TempDir()
	if err := siteWith(map[string]string{"old.html": "O", "keep.html": "K"}).WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	// Simulated debris and a user asset.
	os.WriteFile(filepath.Join(dir, "half.html.tmp"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "style.css"), []byte("body{}"), 0o644)

	pruned, err := siteWith(map[string]string{"keep.html": "K2"}).SyncTo(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"half.html.tmp", "old.html"}
	if len(pruned) != 2 || pruned[0] != want[0] || pruned[1] != want[1] {
		t.Fatalf("pruned = %v, want %v", pruned, want)
	}
	if _, err := os.Stat(filepath.Join(dir, "style.css")); err != nil {
		t.Fatal("user asset pruned")
	}
	data, _ := os.ReadFile(filepath.Join(dir, "keep.html"))
	if string(data) != "K2" {
		t.Fatalf("keep.html = %q", data)
	}
}
