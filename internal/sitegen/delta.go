// Delta-driven regeneration: re-render only the pages a data change
// can reach, reuse the rest from the previous site, and report what
// happened so callers can prune orphaned output files and feed
// telemetry. Reuse is keyed on symbolic page names — the only identity
// stable across site-graph re-evaluations — and falls back to a full
// render whenever that identity is unavailable or the path assignment
// shifted, so the result is always byte-identical to Generate.
package sitegen

import (
	"context"
	"path/filepath"
	"sort"
	"strings"

	"strudel/internal/fsx"
	"strudel/internal/graph"
)

// DeltaStats reports what RegenerateDelta did.
type DeltaStats struct {
	// Rendered and Reused count pages re-rendered versus carried over
	// from the previous site.
	Rendered, Reused int
	// RenderedPaths lists the re-rendered pages' paths, sorted.
	RenderedPaths []string
	// PrunedPaths lists previous-site paths absent from the new site,
	// sorted; SyncTo removes the corresponding files.
	PrunedPaths []string
	// Full is set when reuse was impossible and every page rendered;
	// Reason says why.
	Full   bool
	Reason string
}

// RegenerateDelta renders the generator's site graph, reusing pages of
// prev whose objects the affected predicate clears. A page is reused
// only when its symbolic name and output path are unchanged from prev
// and affected(oid) is false; affected must over-approximate — it must
// return true for every page whose rendered form could differ (its own
// edges, anything it embeds, and the titles of pages it links to — i.e.
// the reverse-reachability cone of the changed objects).
//
// Whenever name-keyed reuse is not provably safe — an unnamed page
// object, or a page whose path changed between the two assignments
// (collision-suffix shifts move links in *other* pages' HTML) — the
// whole site renders from scratch and DeltaStats.Full is set.
func (g *Generator) RegenerateDelta(prev *Site, affected func(graph.OID) bool) (*Site, *DeltaStats, error) {
	return g.RegenerateDeltaContext(context.Background(), prev, affected)
}

// RegenerateDeltaContext is RegenerateDelta with cancellation.
func (g *Generator) RegenerateDeltaContext(ctx context.Context, prev *Site, affected func(graph.OID) bool) (*Site, *DeltaStats, error) {
	site, pageOIDs := g.assignPaths()
	st := &DeltaStats{}

	full := func(reason string) (*Site, *DeltaStats, error) {
		st.Full, st.Reason = true, reason
		st.Rendered, st.Reused = len(pageOIDs), 0
		st.RenderedPaths = site.Paths()
		st.PrunedPaths = prunedPaths(prev, site)
		if err := g.renderPages(ctx, site, pageOIDs); err != nil {
			return nil, nil, err
		}
		return site, st, nil
	}

	if prev == nil || affected == nil {
		return full("no previous site")
	}
	prevByName := make(map[string]*Page, len(prev.Pages))
	for _, p := range prev.Pages {
		if p.Name != "" {
			prevByName[p.Name] = p
		}
	}
	// A common page whose path moved invalidates links in pages the
	// affected cone does not cover: bail out to a full render.
	for _, p := range site.Pages {
		if p.Name == "" {
			continue
		}
		if pp, ok := prevByName[p.Name]; ok && pp.Path != p.Path {
			return full("path shift for " + p.Name)
		}
	}

	var render []graph.OID
	for _, oid := range pageOIDs {
		p := site.Pages[site.PathOf[oid]]
		pp := prevByName[p.Name]
		if p.Name != "" && pp != nil && pp.HTML != "" && !affected(oid) {
			p.HTML = pp.HTML
			p.Title = pp.Title
			// The reused page's closure avoided the change (that is what
			// affected over-approximates), so its entity tag is provably
			// unchanged: carry it, and conditional requests keep
			// answering 304 across the swap.
			p.ETag = pp.ETag
			st.Reused++
			continue
		}
		render = append(render, oid)
		st.RenderedPaths = append(st.RenderedPaths, p.Path)
	}
	st.Rendered = len(render)
	sort.Strings(st.RenderedPaths)
	st.PrunedPaths = prunedPaths(prev, site)
	if err := g.renderPages(ctx, site, render); err != nil {
		return nil, nil, err
	}
	return site, st, nil
}

// RegenerateConeContext is the differential rebuilder's generation
// path. Its contract: prev was rendered over the *same* site-graph
// instance this generator holds, that graph was maintained in place,
// and cone over-approximates every object whose page — or whose
// linking pages — could have changed. Under that contract a page
// object outside the cone kept its name, its template association and
// therefore its path, so the previous assignment is adopted wholesale
// (O(pages) map work) instead of re-deriving template selection for
// every node the way assignPaths does; only cone objects get fresh
// selection, paths and renders.
//
// oidsStable asserts that no output-graph OID changed since prev was
// rendered (the maintenance layer reports whether it renumbered): the
// carried pages' recorded OIDs are then still correct, so they are
// shared as-is — no per-page name resolution, no copies. Pages are
// immutable once rendered, and only freshly re-rendered pages (never
// carried ones) are written to, so sharing is safe.
//
// Returns (nil, nil, nil) when name-keyed reuse is not provably safe —
// an unnamed page object, or a cone page whose path moved (links in
// pages outside the cone would go stale); the caller should fall back
// to RegenerateDeltaContext. A non-zero Collisions on the returned
// site means the assignment could not be trusted either: the caller
// must discard the result (pages may be missing), since a from-scratch
// build would have chosen enumeration-dependent suffixes.
func (g *Generator) RegenerateConeContext(ctx context.Context, prev *Site, cone map[graph.OID]struct{}, oidsStable bool) (*Site, *DeltaStats, error) {
	if prev == nil || prev.Collisions != 0 {
		return nil, nil, nil
	}
	st := &DeltaStats{}
	site := &Site{
		Pages:  make(map[string]*Page, len(prev.Pages)+1),
		PathOf: make(map[graph.OID]string, len(prev.Pages)+1),
	}
	var render []graph.OID
	// Previous paths of cone pages, for path-shift detection below.
	prevPath := map[string]string{}
	for _, p := range prev.Pages {
		if p.Name == "" {
			return nil, nil, nil // OID-keyed identity: unstable in place
		}
		oid := p.OID
		if !oidsStable {
			var ok bool
			oid, ok = g.site.NodeByName(p.Name)
			if !ok {
				continue // object removed; prunedPaths picks the page up
			}
		} else if !g.site.HasNode(oid) {
			continue // object removed; prunedPaths picks the page up
		}
		if _, touched := cone[oid]; touched {
			prevPath[p.Name] = p.Path
			continue // re-derived below
		}
		np := p
		if !oidsStable && oid != p.OID {
			np = &Page{Path: p.Path, OID: oid, Name: p.Name, HTML: p.HTML, Title: p.Title, ETag: p.ETag}
		}
		site.Pages[p.Path] = np
		site.PathOf[oid] = p.Path
		if p.HTML == "" {
			render = append(render, oid) // never rendered: do it now
		} else {
			st.Reused++
		}
	}
	coneOIDs := make([]graph.OID, 0, len(cone))
	for oid := range cone {
		coneOIDs = append(coneOIDs, oid)
	}
	sort.Slice(coneOIDs, func(i, j int) bool { return coneOIDs[i] < coneOIDs[j] })
	for _, oid := range coneOIDs {
		if !g.isPage(oid) {
			continue
		}
		name := g.site.NodeName(oid)
		if name == "" {
			return nil, nil, nil
		}
		path := g.pagePath(oid)
		if pp, ok := prevPath[name]; ok && pp != path {
			return nil, nil, nil // path shift: reuse unsafe site-wide
		}
		if _, taken := site.Pages[path]; taken {
			site.Collisions++
			return site, st, nil
		}
		site.Pages[path] = &Page{Path: path, OID: oid, Name: name}
		site.PathOf[oid] = path
		render = append(render, oid)
	}
	sort.Slice(render, func(i, j int) bool { return render[i] < render[j] })
	st.Rendered = len(render)
	for _, oid := range render {
		st.RenderedPaths = append(st.RenderedPaths, site.PathOf[oid])
	}
	sort.Strings(st.RenderedPaths)
	st.PrunedPaths = prunedPaths(prev, site)
	if err := g.renderPages(ctx, site, render); err != nil {
		return nil, nil, err
	}
	return site, st, nil
}

// prunedPaths lists prev's paths that the new site no longer produces.
func prunedPaths(prev, site *Site) []string {
	if prev == nil {
		return nil
	}
	var out []string
	for path := range prev.Pages {
		if _, ok := site.Pages[path]; !ok {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// SyncTo writes every page under dir like WriteTo and then deletes
// stale .html files that no current page produces, returning the
// deleted paths sorted. Only regular .html files directly under dir are
// candidates for pruning, so user assets are never touched.
func (s *Site) SyncTo(dir string) ([]string, error) {
	return s.SyncToFS(fsx.OS, dir)
}

// SyncToFS is SyncTo over an injectable filesystem. Staging remnants
// of interrupted atomic page writes (*.tmp) are also pruned.
func (s *Site) SyncToFS(fsys fsx.FS, dir string) ([]string, error) {
	if err := s.WriteToFS(fsys, dir); err != nil {
		return nil, err
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var pruned []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !(strings.HasSuffix(name, ".html") || fsx.IsTempName(name)) {
			continue
		}
		if _, ok := s.Pages[name]; ok {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return pruned, err
		}
		pruned = append(pruned, name)
	}
	sort.Strings(pruned)
	return pruned, nil
}
