package sitegen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/struql"
)

// siteGraphFrom evaluates the fig3 query over a datadef text.
func siteGraphFrom(t *testing.T, data string) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := struql.Eval(struql.MustParse(fig3Query), res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Output
}

func genFor(t *testing.T, siteGraph *graph.Graph) *Generator {
	t.Helper()
	return New(siteGraph, Config{
		Templates: fig7Templates(t),
		EmbedOnly: map[string]bool{"PaperPresentation": true},
		Index:     "RootPage",
	})
}

// affectedCone resolves a site-graph delta to the reverse-reachability
// predicate RegenerateDelta expects.
func affectedCone(siteGraph *graph.Graph, d *graph.Delta) func(graph.OID) bool {
	var starts []graph.OID
	for _, key := range append(append([]string{}, d.AddedObjects...), d.ChangedObjects...) {
		if oid, ok := siteGraph.ResolveKey(key); ok {
			starts = append(starts, oid)
		}
	}
	cone := siteGraph.ReverseReachable(starts)
	return func(oid graph.OID) bool {
		_, ok := cone[oid]
		return ok
	}
}

func TestRegenerateDeltaTitleTouch(t *testing.T) {
	oldGraph := siteGraphFrom(t, fig2Data)
	prev, err := genFor(t, oldGraph).Generate()
	if err != nil {
		t.Fatal(err)
	}
	newData := strings.Replace(fig2Data, `title "Specifying Representations..."`,
		`title "Specifying NEW Representations"`, 1)
	newGraph := siteGraphFrom(t, newData)
	d := graph.Diff(oldGraph, newGraph)
	if d.Empty() {
		t.Fatal("site delta unexpectedly empty")
	}

	gen := genFor(t, newGraph)
	got, st, err := gen.RegenerateDelta(prev, affectedCone(newGraph, d))
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pages) != len(want.Pages) {
		t.Fatalf("delta site has %d pages, full has %d", len(got.Pages), len(want.Pages))
	}
	for path, wp := range want.Pages {
		gp, ok := got.Pages[path]
		if !ok {
			t.Errorf("missing page %s", path)
			continue
		}
		if gp.HTML != wp.HTML || gp.Title != wp.Title {
			t.Errorf("%s differs from full rebuild", path)
		}
	}
	if st.Full {
		t.Fatalf("expected selective rebuild, got full (%s)", st.Reason)
	}
	if st.Reused == 0 || st.Rendered == 0 {
		t.Fatalf("stats = %+v, want a mix of reused and rendered", st)
	}
	// pub1 is a 1997 paper: the 1998 year page cannot observe the edit.
	for _, p := range st.RenderedPaths {
		if p == "YearPage_1998.html" {
			t.Errorf("YearPage_1998 re-rendered needlessly: %v", st.RenderedPaths)
		}
	}
	if st.Rendered+st.Reused != len(want.Pages) {
		t.Errorf("rendered %d + reused %d != %d pages", st.Rendered, st.Reused, len(want.Pages))
	}
}

func TestRegenerateDeltaNilPrevIsFull(t *testing.T) {
	g := genFor(t, siteGraphFrom(t, fig2Data))
	site, st, err := g.RegenerateDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full || st.Reused != 0 || st.Rendered != len(site.Pages) {
		t.Fatalf("stats = %+v, want full render of %d pages", st, len(site.Pages))
	}
	want, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for path, wp := range want.Pages {
		if site.Pages[path] == nil || site.Pages[path].HTML != wp.HTML {
			t.Errorf("%s differs from Generate", path)
		}
	}
}

func TestRegenerateDeltaPrunesRemovedPages(t *testing.T) {
	oldGraph := siteGraphFrom(t, fig2Data)
	prev, err := genFor(t, oldGraph).Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Dropping pub2's second category removes its CategoryPage.
	newData := strings.Replace(fig2Data, "    category \"Semistructured Data\"\n", "", 1)
	newGraph := siteGraphFrom(t, newData)
	d := graph.Diff(oldGraph, newGraph)
	got, st, err := genFor(t, newGraph).RegenerateDelta(prev, affectedCone(newGraph, d))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PrunedPaths) != 1 || !strings.Contains(st.PrunedPaths[0], "Semistructured") {
		t.Fatalf("pruned = %v, want the dropped category page", st.PrunedPaths)
	}

	// SyncTo removes the stale file from a directory holding the old site.
	dir := t.TempDir()
	if err := prev.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	pruned, err := got.SyncTo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || pruned[0] != st.PrunedPaths[0] {
		t.Fatalf("SyncTo pruned %v, want %v", pruned, st.PrunedPaths)
	}
	if _, err := os.Stat(filepath.Join(dir, st.PrunedPaths[0])); !os.IsNotExist(err) {
		t.Errorf("stale page still on disk: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(got.Pages) {
		t.Errorf("dir has %d files, site has %d pages", len(entries), len(got.Pages))
	}
}
