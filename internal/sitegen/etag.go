// Provenance-keyed entity tags. Every generated page carries a strong
// HTTP ETag derived from its *render closure* — the set of site-graph
// objects reachable from the page object, which is exactly the set
// whose content the rendered bytes can depend on (PageProvenanceFor
// walks the same closure) — plus the rendered bytes themselves.
//
// Two properties follow, and the serving edge leans on both:
//
//   - Determinism: the fingerprint of an object is a pure function of
//     its symbolic name and canonical out-edge set (the same canonical
//     form graph.Diff compares), so ETags are byte-identical across
//     worker counts and identical between a from-scratch build and a
//     delta rebuild of equal content.
//
//   - Exact invalidation: a page's ETag changes iff its closure
//     intersects the content a delta touched (or its own bytes
//     changed). Pages outside a change's reverse-reachability cone are
//     carried over with their ETag, so conditional requests keep
//     answering 304 across a site swap.
//
// Granularity caveat: the closure is at *site-object* granularity, the
// same granularity the differential rebuilder invalidates at. Content
// reachable only through external file atoms (Config.FileResolver) is
// seen by the body hash but not the closure hash.
package sitegen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sort"
	"strconv"
	"sync"

	"strudel/internal/graph"
)

// etagger computes closure-keyed page ETags over one immutable site
// graph. Object fingerprints are memoized so pages with overlapping
// closures (every page shares the objects it links to) pay for each
// object once per generation run. Safe for concurrent use by the
// render pool's workers.
type etagger struct {
	g    *graph.Graph
	mu   sync.Mutex
	memo map[graph.OID][sha256.Size]byte
}

func newETagger(g *graph.Graph) *etagger {
	return &etagger{g: g, memo: map[graph.OID][sha256.Size]byte{}}
}

// fingerprint hashes one object's content: its symbolic name plus its
// canonical out-edge set, encoded exactly as graph.Diff's snapshot
// ("label\x00valueKey", node targets by name) so "fingerprint changed"
// and "Diff reports the object changed" coincide.
func (e *etagger) fingerprint(oid graph.OID) [sha256.Size]byte {
	e.mu.Lock()
	fp, ok := e.memo[oid]
	e.mu.Unlock()
	if ok {
		return fp
	}
	edges := e.g.Out(oid)
	keys := make([]string, 0, len(edges))
	for _, ed := range edges {
		keys = append(keys, ed.Label+"\x00"+e.valKey(ed.To))
	}
	sort.Strings(keys)
	h := sha256.New()
	writeLenPrefixed(h, e.g.NodeName(oid))
	for _, k := range keys {
		writeLenPrefixed(h, k)
	}
	h.Sum(fp[:0])
	e.mu.Lock()
	e.memo[oid] = fp
	e.mu.Unlock()
	return fp
}

// valKey renders an edge target content-canonically: nodes by symbolic
// name (stable across re-evaluations; unnamed nodes fall back to their
// OID, which is only stable for in-place maintenance), atoms by their
// typed string form.
func (e *etagger) valKey(v graph.Value) string {
	if v.IsNode() {
		if name := e.g.NodeName(v.OID()); name != "" {
			return "@" + name
		}
		return "&" + strconv.FormatUint(uint64(v.OID()), 10)
	}
	return v.String()
}

// writeLenPrefixed writes a length-delimited string so concatenated
// fields can never alias each other.
func writeLenPrefixed(w io.Writer, s string) {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(s)))
	w.Write(lenBuf[:n])
	io.WriteString(w, s)
}

// pageETag derives the strong entity tag for a rendered page: the
// XOR-combination of its closure's object fingerprints (set-hash —
// order-independent, so no sort over the closure is needed) hashed
// together with the rendered bytes. The tag is returned in HTTP wire
// form, quotes included.
func (e *etagger) pageETag(oid graph.OID, body string) string {
	var acc [sha256.Size]byte
	for member := range e.g.Reachable(oid) {
		fp := e.fingerprint(member)
		for i := range acc {
			acc[i] ^= fp[i]
		}
	}
	h := sha256.New()
	h.Write(acc[:])
	io.WriteString(h, body)
	sum := h.Sum(nil)
	return `"` + hex.EncodeToString(sum[:20]) + `"`
}

// BytesETag is the strong entity tag for content with no closure — a
// dynamically computed page or a generated listing — derived from the
// bytes alone.
func BytesETag(body string) string {
	sum := sha256.Sum256([]byte(body))
	return `"` + hex.EncodeToString(sum[:20]) + `"`
}
