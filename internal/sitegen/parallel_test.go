package sitegen

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/pool"
	"strudel/internal/template"
)

// pageGraph builds a site graph of n page objects plus an index, with
// colliding page names so the path-disambiguation suffixes are
// exercised.
func pageGraph(t *testing.T, n int) (*graph.Graph, Config) {
	t.Helper()
	g := graph.New("site")
	root := g.NewNode("RootPage()")
	for i := 0; i < n; i++ {
		// Names like "Item(a.b)" and "Item(a_b)" sanitize to the same
		// path, forcing -2/-3... suffixes.
		p := g.NewNode(fmt.Sprintf("Item(a.%d)", i))
		q := g.NewNode(fmt.Sprintf("Item(a_%d)", i))
		for _, id := range []graph.OID{p, q} {
			if err := g.AddEdge(id, "title", graph.Str(fmt.Sprintf("title-%d", i))); err != nil {
				t.Fatal(err)
			}
			if err := g.AddEdge(root, "item", graph.NodeValue(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tpls := map[string]*template.Template{}
	for key, src := range map[string]string{
		"RootPage": `<html><body><SFMT_UL item></body></html>`,
		"Item":     `<html><body><h1><SFMT title></h1></body></html>`,
	} {
		tpl, err := template.Parse(key, src)
		if err != nil {
			t.Fatal(err)
		}
		tpls[key] = tpl
	}
	return g, Config{Templates: tpls, Index: "RootPage"}
}

// TestGeneratePathsStable: two back-to-back builds of the same graph
// produce identical Paths() slices — path assignment is pinned to
// sorted page OIDs, not enumeration order (regression for the
// map-iteration-order hazard).
func TestGeneratePathsStable(t *testing.T) {
	g, cfg := pageGraph(t, 25)
	s1, err := New(g, cfg).Generate()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(g, cfg).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Paths(), s2.Paths()) {
		t.Fatalf("paths differ between back-to-back builds:\n%v\n%v", s1.Paths(), s2.Paths())
	}
	// The collision suffixes must be present and deterministic.
	foundSuffix := false
	for _, p := range s1.Paths() {
		if len(p) > 7 && p[len(p)-7:] == "-2.html" {
			foundSuffix = true
		}
	}
	if !foundSuffix {
		t.Fatal("expected colliding page names to produce -2.html suffixes")
	}
}

// TestGenerateParallelByteIdentical: the full page map is
// byte-identical at workers 1, 4 and 16.
func TestGenerateParallelByteIdentical(t *testing.T) {
	g, cfg := pageGraph(t, 40)
	cfg.Workers = 1
	base, err := New(g, cfg).Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 16} {
		cfg.Workers = w
		got, err := New(g, cfg).Generate()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(got.Pages) != len(base.Pages) {
			t.Fatalf("workers=%d: %d pages, want %d", w, len(got.Pages), len(base.Pages))
		}
		for path, bp := range base.Pages {
			gp, ok := got.Pages[path]
			if !ok {
				t.Fatalf("workers=%d: missing page %s", w, path)
			}
			if gp.HTML != bp.HTML || gp.Title != bp.Title || gp.OID != bp.OID {
				t.Fatalf("workers=%d: page %s differs from sequential render", w, path)
			}
		}
		if !reflect.DeepEqual(got.Paths(), base.Paths()) {
			t.Fatalf("workers=%d: paths differ", w)
		}
	}
}

// TestGenerateSharedPool: a Config.Pool overrides Workers and renders
// the same bytes.
func TestGenerateSharedPool(t *testing.T) {
	g, cfg := pageGraph(t, 10)
	base, err := New(g, cfg).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = pool.New(8)
	got, err := New(g, cfg).Generate()
	if err != nil {
		t.Fatal(err)
	}
	for path, bp := range base.Pages {
		if got.Pages[path] == nil || got.Pages[path].HTML != bp.HTML {
			t.Fatalf("page %s differs under shared pool", path)
		}
	}
}

// TestGenerateParallelError: a failing page render fails the whole
// build with the page's error at any worker count, and never panics
// the process.
func TestGenerateParallelError(t *testing.T) {
	g := graph.New("site")
	for i := 0; i < 20; i++ {
		p := g.NewNode(fmt.Sprintf("Page(%d)", i))
		if err := g.AddEdge(p, "self", graph.NodeValue(p)); err != nil {
			t.Fatal(err)
		}
	}
	// A self-embedding template exceeds MaxEmbedDepth on every page.
	tpl, err := template.Parse("Page", `<SFMT self EMBED>`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Templates: map[string]*template.Template{"Page": tpl}, MaxEmbedDepth: 4}
	for _, w := range []int{1, 4, 16} {
		cfg.Workers = w
		_, err := New(g, cfg).Generate()
		if err == nil {
			t.Fatalf("workers=%d: expected embedding-depth error", w)
		}
		var pe *pool.PanicError
		if errors.As(err, &pe) {
			t.Fatalf("workers=%d: render error surfaced as panic: %v", w, err)
		}
	}
}
