// Page-level provenance assembly: a page's HTML embeds every object
// reachable from its page node in the site graph, so its provenance is
// the union of the struql-recorded node provenance over that forward
// closure — exactly the dependency cone the incremental rebuilder
// walks in reverse when it decides which pages a data change touches.
package sitegen

import (
	"fmt"
	"io"
	"sort"

	"strudel/internal/graph"
	"strudel/internal/struql"
)

// PageProvenance answers "why does this page exist and what does it
// depend on": the Skolem function and binding tuples that created the
// page node, plus the source objects and attribute labels consumed by
// every site-graph object the page renders.
type PageProvenance struct {
	Path string `json:"path"`
	Name string `json:"name"`
	Func string `json:"func,omitempty"`
	// Objects are the symbolic names of the site-graph nodes in the
	// page's render closure, sorted.
	Objects []string `json:"objects,omitempty"`
	// TupleCount and Tuples describe the page node's own bindings.
	TupleCount int              `json:"tuple_count"`
	Tuples     []struql.Binding `json:"tuples,omitempty"`
	// Sources are the data-graph objects the whole closure consumed.
	Sources []struql.SourceRef `json:"sources"`
	// Attrs are the data-graph attribute labels the closure read.
	Attrs []string `json:"attrs,omitempty"`
}

// PageProvenanceFor assembles the provenance of one generated page
// from the evaluation's node-level records. siteGraph must be the
// graph the site was generated from, and prov the recorder passed to
// that evaluation. Returns false when the path names no page.
func PageProvenanceFor(siteGraph *graph.Graph, site *Site, path string, prov *struql.Provenance) (*PageProvenance, bool) {
	if site == nil || prov == nil {
		return nil, false
	}
	pg, ok := site.Pages[path]
	if !ok {
		return nil, false
	}
	out := &PageProvenance{
		Path: pg.Path,
		Name: pg.Name,
		Func: skolemFunc(pg.Name),
	}
	closure := siteGraph.Reachable(pg.OID)
	oids := make([]graph.OID, 0, len(closure))
	for oid := range closure {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })

	srcByOID := map[graph.OID]struql.SourceRef{}
	attrs := map[string]struct{}{}
	for _, oid := range oids {
		np, ok := prov.Node(oid)
		if !ok {
			continue
		}
		out.Objects = append(out.Objects, np.Name)
		if oid == pg.OID {
			out.TupleCount = np.TupleCount
			out.Tuples = np.Tuples
		}
		for _, s := range np.Sources {
			srcByOID[s.OID] = s
		}
		for _, a := range np.Attrs {
			attrs[a] = struct{}{}
		}
	}
	sort.Strings(out.Objects)
	out.Sources = make([]struql.SourceRef, 0, len(srcByOID))
	for _, s := range srcByOID {
		out.Sources = append(out.Sources, s)
	}
	sort.Slice(out.Sources, func(i, j int) bool {
		a, b := out.Sources[i], out.Sources[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.OID < b.OID
	})
	out.Attrs = make([]string, 0, len(attrs))
	for a := range attrs {
		out.Attrs = append(out.Attrs, a)
	}
	sort.Strings(out.Attrs)
	return out, true
}

// WriteText renders the provenance as a human-readable listing (the
// `strudel why` output).
func (p *PageProvenance) WriteText(w io.Writer) {
	fmt.Fprintf(w, "page %s\n", p.Path)
	fmt.Fprintf(w, "  object  %s\n", p.Name)
	if p.Func != "" {
		fmt.Fprintf(w, "  skolem  %s  (%d binding tuples)\n", p.Func, p.TupleCount)
	}
	for _, t := range p.Tuples {
		vars := make([]string, 0, len(t))
		for v := range t {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		fmt.Fprintf(w, "    tuple ")
		for i, v := range vars {
			if i > 0 {
				fmt.Fprintf(w, ", ")
			}
			fmt.Fprintf(w, "%s=%s", v, t[v])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  sources (%d):\n", len(p.Sources))
	for _, s := range p.Sources {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("oid:%d", s.OID)
		}
		fmt.Fprintf(w, "    %s\n", name)
	}
	if len(p.Attrs) > 0 {
		fmt.Fprintf(w, "  attributes: ")
		for i, a := range p.Attrs {
			if i > 0 {
				fmt.Fprintf(w, ", ")
			}
			fmt.Fprintf(w, "%s", a)
		}
		fmt.Fprintln(w)
	}
}
