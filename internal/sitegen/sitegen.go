// Package sitegen implements STRUDEL's HTML generator (paper Secs. 2.5
// and 4): given a site graph and a set of HTML templates, it produces
// the browsable Web site. For every internal object the generator
// selects a template — an object-specific one, the value of the
// object's HTML-template attribute, or the template associated with a
// collection (or Skolem function) the object belongs to — evaluates
// it, and either emits the result as a page or embeds it in pages
// that refer to the object. The choice to realize an object as a page
// or a page component is delayed until HTML generation: an object
// with a template is a page by default; the EMBED directive (or an
// embed-only association) overrides the default per reference.
package sitegen

import (
	"context"
	"fmt"
	"html"
	"path/filepath"
	"sort"
	"strings"

	"strudel/internal/fsx"
	"strudel/internal/graph"
	"strudel/internal/pool"
	"strudel/internal/template"
)

// Config configures a Generator.
type Config struct {
	// Templates maps association keys to templates. For each object
	// the keys tried, in order, are: the object's symbolic name
	// ("RootPage()"), its Skolem function name ("RootPage"), then
	// each collection it belongs to.
	Templates map[string]*template.Template
	// HTMLTemplateAttr names the attribute whose value selects a
	// template for an object (selection rule 2). Default
	// "HTML-template".
	HTMLTemplateAttr string
	// EmbedOnly lists association keys whose objects are never
	// realized as standalone pages — they are always embedded
	// (e.g. PaperPresentation fragments).
	EmbedOnly map[string]bool
	// Index names the association key realized as index.html
	// (typically "RootPage").
	Index string
	// FileResolver, when set, lets text and HTML file atoms embed
	// their contents (text escaped, HTML verbatim). Without it, file
	// atoms render as their path.
	FileResolver func(path string) (string, error)
	// MaxEmbedDepth bounds recursive embedding; 0 means 16.
	MaxEmbedDepth int
	// Workers bounds how many pages render concurrently; 0 means
	// runtime.GOMAXPROCS(0), 1 renders sequentially. The output is
	// byte-identical at any worker count: paths are assigned in sorted
	// OID order before rendering, and each page renders independently
	// over the immutable site graph.
	Workers int
	// Pool, when set, overrides Workers with a shared (possibly
	// instrumented) worker pool.
	Pool *pool.Pool
}

// Page is one generated HTML page.
type Page struct {
	Path string
	OID  graph.OID
	// Name is the page object's symbolic node name ("YearPage(1997)").
	// It is the page's stable identity across rebuilds: OIDs shift when
	// the site graph is re-evaluated, names do not.
	Name  string
	HTML  string
	Title string
	// ETag is the page's strong HTTP entity tag, derived from the
	// SHA-256 of its provenance closure plus the rendered bytes (see
	// etag.go). Computed once at build/delta time; the serving edge
	// answers If-None-Match from it. Carried unchanged when a delta
	// rebuild reuses the page.
	ETag string
}

// Site is the browsable result of generation.
type Site struct {
	// Pages by path, e.g. "YearPage_1997.html".
	Pages map[string]*Page
	// PathOf maps page objects to their paths.
	PathOf map[graph.OID]string
	// Collisions counts pages whose natural path was taken and got a
	// numeric suffix. Suffix assignment depends on OID enumeration
	// order, which in-place graph maintenance does not preserve, so a
	// collision-free site is a precondition for differential rebuilds.
	Collisions int
}

// WriteTo writes every page under dir. Each page is written to a temp
// file and renamed into place, so a concurrent reader of the output
// directory (a web server pointed at it) observes either the old or
// the new page in full, never a truncated prefix. Writes are not
// fsynced — crash-durable publication is the publish package's job.
func (s *Site) WriteTo(dir string) error {
	return s.WriteToFS(fsx.OS, dir)
}

// WriteToFS is WriteTo over an injectable filesystem. Pages are
// written in sorted path order so the operation sequence is
// deterministic under fault injection.
func (s *Site) WriteToFS(fsys fsx.FS, dir string) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, path := range s.Paths() {
		if err := fsx.WriteFileAtomic(fsys, filepath.Join(dir, path), []byte(s.Pages[path].HTML), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Paths returns the page paths, sorted.
func (s *Site) Paths() []string {
	out := make([]string, 0, len(s.Pages))
	for p := range s.Pages {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Generator renders a site graph into HTML pages.
type Generator struct {
	site *graph.Graph
	cfg  Config
}

// New creates a generator for a site graph.
func New(site *graph.Graph, cfg Config) *Generator {
	if cfg.HTMLTemplateAttr == "" {
		cfg.HTMLTemplateAttr = "HTML-template"
	}
	if cfg.MaxEmbedDepth == 0 {
		cfg.MaxEmbedDepth = 16
	}
	if cfg.Templates == nil {
		cfg.Templates = map[string]*template.Template{}
	}
	return &Generator{site: site, cfg: cfg}
}

// skolemFunc extracts the Skolem function name from an object name:
// "YearPage(1997)" → "YearPage"; plain names return themselves.
func skolemFunc(name string) string {
	if i := strings.IndexByte(name, '('); i > 0 {
		return name[:i]
	}
	return name
}

// associationKeys returns the template-selection keys for an object,
// in priority order.
func (g *Generator) associationKeys(oid graph.OID) []string {
	var keys []string
	name := g.site.NodeName(oid)
	if name != "" {
		keys = append(keys, name)
		if fn := skolemFunc(name); fn != name {
			keys = append(keys, fn)
		}
	}
	for _, c := range g.site.Collections() {
		if g.site.InCollection(c, graph.NodeValue(oid)) {
			keys = append(keys, c)
		}
	}
	return keys
}

// selectTemplate implements the paper's three selection rules.
func (g *Generator) selectTemplate(oid graph.OID) (*template.Template, string, bool) {
	keys := g.associationKeys(oid)
	// Rule 1 and 3: object-specific, then Skolem function, then
	// collection associations.
	// Rule 2: the object's HTML-template attribute takes priority
	// over collection-level association but not over an
	// object-specific one.
	if len(keys) > 0 {
		if t, ok := g.cfg.Templates[keys[0]]; ok {
			return t, keys[0], true
		}
	}
	if v, ok := g.site.First(oid, g.cfg.HTMLTemplateAttr); ok {
		if s, sok := v.AsString(); sok {
			if t, tok := g.cfg.Templates[s]; tok {
				return t, s, true
			}
		}
	}
	for _, k := range keys[min(1, len(keys)):] {
		if t, ok := g.cfg.Templates[k]; ok {
			return t, k, true
		}
	}
	return nil, "", false
}

// isPage reports whether the object is realized as a standalone page.
func (g *Generator) isPage(oid graph.OID) bool {
	t, key, ok := g.selectTemplate(oid)
	return ok && t != nil && !g.cfg.EmbedOnly[key]
}

// pagePath computes the output file for a page object.
func (g *Generator) pagePath(oid graph.OID) string {
	name := g.site.NodeName(oid)
	if name == "" {
		name = fmt.Sprintf("object-%d", uint64(oid))
	}
	if _, key, ok := g.selectTemplate(oid); ok && g.cfg.Index != "" &&
		(key == g.cfg.Index || skolemFunc(name) == g.cfg.Index) {
		return "index.html"
	}
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r == '(', r == ')', r == ',', r == ' ', r == '.':
			return '_'
		default:
			return '-'
		}
	}, name)
	safe = strings.Trim(safe, "_")
	if safe == "" {
		safe = fmt.Sprintf("object-%d", uint64(oid))
	}
	return safe + ".html"
}

// Generate renders every page object of the site graph. Pages render
// concurrently (see Config.Workers); the result is byte-identical to a
// sequential run.
func (g *Generator) Generate() (*Site, error) {
	return g.GenerateContext(context.Background())
}

// GenerateContext is Generate with cancellation: a cancelled context
// aborts rendering early and returns the context's error.
func (g *Generator) GenerateContext(ctx context.Context) (*Site, error) {
	site, pageOIDs := g.assignPaths()
	// Second pass: render. The site graph and the path maps are
	// read-only from here on, and each task writes only its own Page,
	// so pages render concurrently; the pool joins its workers before
	// returning, which orders every write before Generate's return.
	if err := g.renderPages(ctx, site, pageOIDs); err != nil {
		return nil, err
	}
	return site, nil
}

// assignPaths runs the first generation pass: it assigns every page
// object its output path so links can resolve forward. Page OIDs are
// explicitly sorted so path assignment — and in particular the
// collision-disambiguation suffixes — never depends on the enumeration
// order of the underlying graph: two builds of the same graph produce
// identical Paths() at any worker count.
func (g *Generator) assignPaths() (*Site, []graph.OID) {
	site := &Site{Pages: map[string]*Page{}, PathOf: map[graph.OID]string{}}
	var pageOIDs []graph.OID
	for _, oid := range g.site.Nodes() {
		if g.isPage(oid) {
			pageOIDs = append(pageOIDs, oid)
		}
	}
	sort.Slice(pageOIDs, func(i, j int) bool { return pageOIDs[i] < pageOIDs[j] })
	for _, oid := range pageOIDs {
		path := g.pagePath(oid)
		// Disambiguate collisions deterministically.
		for i := 2; ; i++ {
			if _, taken := site.Pages[path]; !taken {
				break
			}
			if i == 2 {
				site.Collisions++
			}
			path = strings.TrimSuffix(g.pagePath(oid), ".html") + fmt.Sprintf("-%d.html", i)
		}
		site.Pages[path] = &Page{Path: path, OID: oid, Name: g.site.NodeName(oid)}
		site.PathOf[oid] = path
	}
	return site, pageOIDs
}

// renderPages renders the given page objects into site concurrently.
// Each rendered page also gets its closure-keyed ETag here (see
// etag.go); the shared fingerprint memo makes the ETag pass cost one
// fingerprint per distinct closure object, not one per page.
func (g *Generator) renderPages(ctx context.Context, site *Site, pageOIDs []graph.OID) error {
	p := g.cfg.Pool
	if p == nil {
		p = pool.New(g.cfg.Workers)
	}
	et := newETagger(g.site)
	return pool.ForEach(pool.WithPhase(ctx, "render"), p, len(pageOIDs), func(_ context.Context, i int) error {
		oid := pageOIDs[i]
		htmlText, err := g.renderObject(oid, site, 0)
		if err != nil {
			return fmt.Errorf("sitegen: rendering %s: %w", g.site.DisplayName(oid), err)
		}
		pg := site.Pages[site.PathOf[oid]]
		pg.HTML = htmlText
		pg.Title = g.titleOf(oid)
		pg.ETag = et.pageETag(oid, htmlText)
		return nil
	})
}

// titleOf guesses a page title for diagnostics: the object's title or
// name attribute, else its node name.
func (g *Generator) titleOf(oid graph.OID) string {
	for _, attr := range []string{"title", "name", "Name", "Year"} {
		if v, ok := g.site.First(oid, attr); ok && v.IsAtom() {
			return v.Text()
		}
	}
	return g.site.DisplayName(oid)
}

// renderObject evaluates the object's template with a renderer that
// resolves references into links or embedded fragments.
func (g *Generator) renderObject(oid graph.OID, site *Site, depth int) (string, error) {
	if depth > g.cfg.MaxEmbedDepth {
		return "", fmt.Errorf("embedding depth exceeds %d (cycle through %s?)", g.cfg.MaxEmbedDepth, g.site.DisplayName(oid))
	}
	tpl, _, ok := g.selectTemplate(oid)
	if !ok {
		// No template: render the object's display name.
		return html.EscapeString(g.site.DisplayName(oid)), nil
	}
	env := &template.Env{
		Graph: g.site,
		Self:  oid,
		Render: func(v graph.Value, opts template.RenderOpts) (string, error) {
			return g.renderValue(v, opts, site, depth)
		},
	}
	return tpl.ExecuteString(env)
}

// renderValue implements the reference-rendering rules.
func (g *Generator) renderValue(v graph.Value, opts template.RenderOpts, site *Site, depth int) (string, error) {
	if v.IsNode() {
		oid := v.OID()
		path, isPage := site.PathOf[oid]
		if isPage && !opts.Embed {
			tag := opts.LinkTag
			if tag == "" {
				tag = g.titleOf(oid)
			}
			return fmt.Sprintf("<a href=%q>%s</a>", path, html.EscapeString(tag)), nil
		}
		// Embedded (by directive or because the object is not a page).
		return g.renderObject(oid, site, depth+1)
	}
	// File atoms may embed their contents.
	if v.Kind() == graph.KindFile && g.cfg.FileResolver != nil {
		switch v.FileType() {
		case graph.FileText:
			content, err := g.cfg.FileResolver(v.Text())
			if err == nil {
				return html.EscapeString(content), nil
			}
		case graph.FileHTML:
			content, err := g.cfg.FileResolver(v.Text())
			if err == nil {
				return content, nil
			}
		}
	}
	return template.RenderAtom(g.site, v, opts)
}
