package sitegen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/template"
)

const fig2Data = `
collection Publications { abstract text postscript ps }
object pub1 in Publications {
    title "Specifying Representations..."
    author "Norman Ramsey"
    author "Mary Fernandez"
    year 1997
    journal "TOPLAS"
    abstract "abstracts/toplas97.txt"
    postscript "papers/toplas97.ps.gz"
    category "Programming Languages"
}
object pub2 in Publications {
    title "Optimizing Regular..."
    author "Mary Fernandez"
    author "Dan Suciu"
    year 1998
    booktitle "Proc. of ICDE"
    abstract "abstracts/icde98.txt"
    postscript "papers/icde98.ps.gz"
    category "Semistructured Data"
    category "Programming Languages"
}
`

const fig3Query = `
INPUT BIBTEX
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
WHERE Publications(x), x -> l -> v
CREATE PaperPresentation(x), AbstractPage(x)
LINK AbstractPage(x) -> l -> v,
     PaperPresentation(x) -> l -> v,
     PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  WHERE l = "year"
  CREATE YearPage(v)
  LINK YearPage(v) -> "Year" -> v,
       YearPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(v)
}
{
  WHERE l = "category"
  CREATE CategoryPage(v)
  LINK CategoryPage(v) -> "Name" -> v,
       CategoryPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(v)
}
OUTPUT HomePage
`

// fig7Templates are the paper's Fig. 7 templates, reconstructed.
func fig7Templates(t *testing.T) map[string]*template.Template {
	t.Helper()
	srcs := map[string]string{
		"RootPage": `<html><head><title>Home</title></head><body>
<h2>Publications by Year</h2>
<SFMT_UL YearPage ORDER=ascend KEY=Year>
<h2>Publications by Topic</h2>
<SFMT_UL CategoryPage ORDER=ascend KEY=Name>
<p><SFMT AbstractsPage LINK="All abstracts">
</body></html>`,
		"AbstractsPage": `<html><body><h1>Paper Abstracts</h1>
<SFMT_UL Abstract EMBED>
</body></html>`,
		"YearPage": `<html><body><h1>Publications from <SFMT Year></h1>
<SFMT_UL Paper EMBED>
</body></html>`,
		"CategoryPage": `<html><body><h1>Publications on <SFMT Name></h1>
<SFMT_UL Paper EMBED>
</body></html>`,
		"PaperPresentation": `<SFMT postscript LINK=title>. By <SFMT author DELIM=", ">. <SIF journal><SFMT journal><SELSE><SFMT booktitle></SIF>, <SFMT year>. <SFMT Abstract LINK="abstract">`,
		"AbstractPage":      `<html><body><h1><SFMT title></h1><p><SFMT abstract></body></html>`,
	}
	out := map[string]*template.Template{}
	for name, src := range srcs {
		tpl, err := template.Parse(name, src)
		if err != nil {
			t.Fatalf("template %s: %v", name, err)
		}
		out[name] = tpl
	}
	return out
}

func buildSite(t *testing.T) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", fig2Data)
	if err != nil {
		t.Fatal(err)
	}
	q, err := struql.Parse(fig3Query)
	if err != nil {
		t.Fatal(err)
	}
	out, err := struql.Eval(q, res.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out.Output
}

func generate(t *testing.T) *Site {
	t.Helper()
	siteGraph := buildSite(t)
	gen := New(siteGraph, Config{
		Templates: fig7Templates(t),
		EmbedOnly: map[string]bool{"PaperPresentation": true},
		Index:     "RootPage",
	})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestGenerateFig7Site(t *testing.T) {
	site := generate(t)
	// Pages: index (root), abstracts, 2 year pages, 2 category pages,
	// 2 abstract pages. PaperPresentation objects are embed-only.
	if len(site.Pages) != 8 {
		t.Fatalf("generated %d pages, want 8: %v", len(site.Pages), site.Paths())
	}
	idx, ok := site.Pages["index.html"]
	if !ok {
		t.Fatalf("no index.html: %v", site.Paths())
	}
	// Root links to year pages in ascending order.
	p97 := strings.Index(idx.HTML, "YearPage_1997.html")
	p98 := strings.Index(idx.HTML, "YearPage_1998.html")
	if p97 < 0 || p98 < 0 || p97 > p98 {
		t.Errorf("index year links wrong (97@%d, 98@%d):\n%s", p97, p98, idx.HTML)
	}
	if !strings.Contains(idx.HTML, ">All abstracts</a>") {
		t.Errorf("index missing abstracts link:\n%s", idx.HTML)
	}
}

func TestYearPageEmbedsPresentation(t *testing.T) {
	site := generate(t)
	var year97 *Page
	for _, p := range site.Pages {
		if strings.Contains(p.Path, "1997") {
			year97 = p
		}
	}
	if year97 == nil {
		t.Fatalf("no 1997 page in %v", site.Paths())
	}
	// The presentation is embedded: authors and the PostScript link
	// appear inline.
	for _, want := range []string{
		"Publications from 1997",
		"Norman Ramsey, Mary Fernandez",
		`<a href="papers/toplas97.ps.gz">Specifying Representations...</a>`,
		"TOPLAS",
	} {
		if !strings.Contains(year97.HTML, want) {
			t.Errorf("1997 page missing %q:\n%s", want, year97.HTML)
		}
	}
	// The embedded presentation links (not embeds) its abstract page.
	if !strings.Contains(year97.HTML, `<a href="AbstractPage_pub1.html">abstract</a>`) {
		t.Errorf("presentation should link to abstract page:\n%s", year97.HTML)
	}
}

func TestAbstractsPageEmbedOverride(t *testing.T) {
	site := generate(t)
	// AbstractPage objects are pages by default (linked from
	// presentations) but the AbstractsPage template EMBEDs them.
	var abstracts *Page
	for _, p := range site.Pages {
		if strings.HasPrefix(p.Path, "AbstractsPage") {
			abstracts = p
		}
	}
	if abstracts == nil {
		t.Fatalf("no abstracts page in %v", site.Paths())
	}
	// Embedded: the abstract pages' <h1> titles appear inline.
	if !strings.Contains(abstracts.HTML, "<h1>Specifying Representations...</h1>") {
		t.Errorf("abstracts page should embed abstract pages:\n%s", abstracts.HTML)
	}
}

func TestWriteTo(t *testing.T) {
	site := generate(t)
	dir := t.TempDir()
	if err := site.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Publications by Year") {
		t.Error("written index.html wrong")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 8 {
		t.Errorf("wrote %d files, want 8", len(entries))
	}
}

func TestHTMLTemplateAttributeSelection(t *testing.T) {
	g := graph.New("site")
	n := g.NewNode("thing")
	g.AddEdge(n, "HTML-template", graph.Str("special"))
	g.AddEdge(n, "label", graph.Str("I am special"))
	gen := New(g, Config{Templates: map[string]*template.Template{
		"special": template.MustParse("special", `<p><SFMT label></p>`),
	}})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Pages) != 1 {
		t.Fatalf("pages = %v", site.Paths())
	}
	for _, p := range site.Pages {
		if p.HTML != "<p>I am special</p>" {
			t.Errorf("html = %q", p.HTML)
		}
	}
}

func TestObjectSpecificBeatsCollection(t *testing.T) {
	g := graph.New("site")
	a := g.NewNode("a")
	b := g.NewNode("b")
	g.AddToCollection("C", graph.NodeValue(a))
	g.AddToCollection("C", graph.NodeValue(b))
	gen := New(g, Config{Templates: map[string]*template.Template{
		"C": template.MustParse("C", `generic`),
		"a": template.MustParse("a", `specific`),
	}})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var byOID = map[string]string{}
	for _, p := range site.Pages {
		byOID[g.NodeName(p.OID)] = p.HTML
	}
	if byOID["a"] != "specific" || byOID["b"] != "generic" {
		t.Errorf("selection wrong: %v", byOID)
	}
}

func TestFileResolverEmbedsText(t *testing.T) {
	g := graph.New("site")
	n := g.NewNode("page")
	g.AddEdge(n, "abstract", graph.File("abs.txt", graph.FileText))
	g.AddEdge(n, "frag", graph.File("frag.html", graph.FileHTML))
	gen := New(g, Config{
		Templates: map[string]*template.Template{
			"page": template.MustParse("page", `<SFMT abstract>|<SFMT frag>`),
		},
		FileResolver: func(path string) (string, error) {
			switch path {
			case "abs.txt":
				return "the <abstract>", nil
			case "frag.html":
				return "<b>bold</b>", nil
			}
			return "", fmt.Errorf("no such file")
		},
	})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range site.Pages {
		if p.HTML != "the &lt;abstract&gt;|<b>bold</b>" {
			t.Errorf("html = %q", p.HTML)
		}
	}
}

func TestEmbedCycleDetected(t *testing.T) {
	g := graph.New("site")
	a := g.NewNode("a")
	b := g.NewNode("b")
	g.AddEdge(a, "other", graph.NodeValue(b))
	g.AddEdge(b, "other", graph.NodeValue(a))
	g.AddToCollection("C", graph.NodeValue(a))
	g.AddToCollection("C", graph.NodeValue(b))
	gen := New(g, Config{Templates: map[string]*template.Template{
		"C": template.MustParse("C", `<SFMT other EMBED>`),
	}})
	if _, err := gen.Generate(); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("err = %v", err)
	}
}

func TestUntemplatedObjectRendersName(t *testing.T) {
	g := graph.New("site")
	a := g.NewNode("a")
	b := g.NewNode("helper")
	g.AddEdge(a, "aux", graph.NodeValue(b))
	g.AddToCollection("C", graph.NodeValue(a))
	gen := New(g, Config{Templates: map[string]*template.Template{
		"C": template.MustParse("C", `[<SFMT aux>]`),
	}})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Pages) != 1 {
		t.Fatalf("pages = %v", site.Paths())
	}
	for _, p := range site.Pages {
		if p.HTML != "[helper]" {
			t.Errorf("html = %q", p.HTML)
		}
	}
}

func TestPathCollisionDisambiguation(t *testing.T) {
	g := graph.New("site")
	// Two distinct objects whose names sanitize identically.
	a := g.NewNode("X(1)")
	b := g.NewNode("X 1")
	g.AddToCollection("C", graph.NodeValue(a))
	g.AddToCollection("C", graph.NodeValue(b))
	gen := New(g, Config{Templates: map[string]*template.Template{
		"C": template.MustParse("C", `x`),
	}})
	site, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Pages) != 2 {
		t.Errorf("collision lost a page: %v", site.Paths())
	}
}
