package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// aggData: three publications across two years with citation counts.
func aggData(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("g")
	add := func(name string, year int64, cites int64) {
		n := g.NewNode(name)
		g.AddToCollection("Publications", graph.NodeValue(n))
		g.AddEdge(n, "year", graph.Int(year))
		g.AddEdge(n, "cites", graph.Int(cites))
	}
	add("p1", 1997, 10)
	add("p2", 1998, 4)
	add("p3", 1998, 6)
	return g
}

func TestAggregateCountPerGroup(t *testing.T) {
	g := aggData(t)
	q := MustParse(`
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Year" -> y,
     YearPage(y) -> "papers" -> COUNT(x)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	y97, _ := res.Output.NodeByName("YearPage(1997)")
	y98, _ := res.Output.NodeByName("YearPage(1998)")
	if v, _ := res.Output.First(y97, "papers"); v != graph.Int(1) {
		t.Errorf("1997 count = %v", v)
	}
	if v, _ := res.Output.First(y98, "papers"); v != graph.Int(2) {
		t.Errorf("1998 count = %v", v)
	}
}

func TestAggregateSumMinMaxAvg(t *testing.T) {
	g := aggData(t)
	q := MustParse(`
WHERE Publications(x), x -> "cites" -> c
CREATE Summary()
LINK Summary() -> "total" -> SUM(c),
     Summary() -> "least" -> MIN(c),
     Summary() -> "most" -> MAX(c),
     Summary() -> "mean" -> AVG(c)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Output.NodeByName("Summary()")
	check := func(label string, want graph.Value) {
		t.Helper()
		if v, _ := res.Output.First(s, label); v != want {
			t.Errorf("%s = %v, want %v", label, v, want)
		}
	}
	check("total", graph.Int(20))
	check("least", graph.Int(4))
	check("most", graph.Int(10))
	// AVG over distinct cite values {10,4,6}.
	check("mean", graph.Float(20.0/3.0))
}

func TestAggregateDistinctSemantics(t *testing.T) {
	// The binding relation is a set; an aggregate sees each distinct
	// value once even when several objects share it.
	g := graph.New("g")
	for _, name := range []string{"a", "b"} {
		n := g.NewNode(name)
		g.AddToCollection("C", graph.NodeValue(n))
		g.AddEdge(n, "tag", graph.Str("shared"))
	}
	q := MustParse(`
WHERE C(x), x -> "tag" -> tg
CREATE Stats()
LINK Stats() -> "tags" -> COUNT(tg),
     Stats() -> "objects" -> COUNT(x)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Output.NodeByName("Stats()")
	if v, _ := res.Output.First(s, "tags"); v != graph.Int(1) {
		t.Errorf("tags = %v, want 1 (distinct)", v)
	}
	if v, _ := res.Output.First(s, "objects"); v != graph.Int(2) {
		t.Errorf("objects = %v, want 2", v)
	}
}

func TestAggregateErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"unbound var", `WHERE C(x) CREATE F() LINK F() -> "n" -> COUNT(z)`, "unbound"},
		{"agg as source", `WHERE C(x) CREATE F() LINK COUNT(x) -> "n" -> F()`, "cannot be a link source"},
		{"agg in collect", `WHERE C(x) COLLECT Out(COUNT(x))`, "only allowed as link targets"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("err = %v", err)
			}
		})
	}
	// SUM over non-numeric values fails at evaluation time.
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddToCollection("C", graph.NodeValue(n))
	g.AddEdge(n, "v", graph.Str("abc"))
	q := MustParse(`WHERE C(x), x -> "v" -> v CREATE F() LINK F() -> "s" -> SUM(v)`)
	if _, err := Eval(q, g, nil); err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Errorf("err = %v", err)
	}
}

func TestAggregateSumFloatPromotion(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddToCollection("C", graph.NodeValue(n))
	g.AddEdge(n, "v", graph.Int(1))
	g.AddEdge(n, "v", graph.Float(2.5))
	q := MustParse(`WHERE C(x), x -> "v" -> v CREATE F() LINK F() -> "s" -> SUM(v)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := res.Output.NodeByName("F()")
	if v, _ := res.Output.First(f, "s"); v != graph.Float(3.5) {
		t.Errorf("sum = %v", v)
	}
}

func TestAggregateStringRoundTrip(t *testing.T) {
	src := `WHERE C(x), x -> "v" -> v
CREATE F()
LINK F() -> "n" -> COUNT(x), F() -> "s" -> SUM(v)`
	q := MustParse(src)
	q2 := MustParse(q.String())
	if q.String() != q2.String() {
		t.Errorf("unstable: %s vs %s", q.String(), q2.String())
	}
}
