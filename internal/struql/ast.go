package struql

import (
	"fmt"
	"strings"

	"strudel/internal/graph"
)

// Query is a parsed StruQL query: one named input graph, one block
// tree, one named output graph.
type Query struct {
	Input  string
	Output string
	Root   *Block
	// Source preserves the original text for diagnostics and metrics
	// (site-definition query sizes are one of the paper's reported
	// statistics).
	Source string
}

// Block is one where/create/link/collect group. A child block's where
// conditions are conjoined with all of its ancestors' conditions; its
// construction clauses execute once per combined binding.
type Block struct {
	Where    []Condition
	Creates  []SkolemTerm
	Links    []Link
	Collects []Collect
	Children []*Block
}

// Term is a variable or a constant in a condition or clause.
type Term struct {
	Var   string // variable name; empty for constants
	Const graph.Value
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return t.Const.String()
}

// Var makes a variable term.
func VarTerm(name string) Term { return Term{Var: name} }

// ConstTerm makes a constant term.
func ConstTerm(v graph.Value) Term { return Term{Const: v} }

// LabelTerm is the middle of an x -> label -> y edge: a literal label,
// an arc variable, or the any-label wildcard.
type LabelTerm struct {
	Var string // arc variable
	Lit string // literal label
	Any bool   // "_" wildcard
}

func (l LabelTerm) String() string {
	switch {
	case l.Any:
		return "_"
	case l.Var != "":
		return l.Var
	default:
		return fmt.Sprintf("%q", l.Lit)
	}
}

// Condition is one conjunct of a where clause.
type Condition interface {
	fmt.Stringer
	// vars appends the variables mentioned by the condition.
	vars(map[string]varKind)
}

type varKind int

const (
	nodeVar varKind = iota
	arcVar
)

// MembershipCond tests collection membership: Publications(x). At the
// semantic level a name is a collection if the input graph declares
// it, otherwise it denotes an external predicate (PredCond); the
// parser produces MembershipCond and the evaluator reinterprets.
type MembershipCond struct {
	Collection string
	Arg        Term
}

func (c *MembershipCond) String() string {
	return fmt.Sprintf("%s(%s)", c.Collection, c.Arg)
}

func (c *MembershipCond) vars(m map[string]varKind) {
	if c.Arg.IsVar() {
		m[c.Arg.Var] = nodeVar
	}
}

// EdgeCond is a single-edge condition x -> l -> y. The label may be a
// literal, an arc variable (which binds to the edge's label), or the
// any-label wildcard.
type EdgeCond struct {
	From  Term
	Label LabelTerm
	To    Term
}

func (c *EdgeCond) String() string {
	return fmt.Sprintf("%s -> %s -> %s", c.From, c.Label, c.To)
}

func (c *EdgeCond) vars(m map[string]varKind) {
	if c.From.IsVar() {
		m[c.From.Var] = nodeVar
	}
	if c.To.IsVar() {
		m[c.To.Var] = nodeVar
	}
	if c.Label.Var != "" {
		m[c.Label.Var] = arcVar
	}
}

// PathCond is a regular-path-expression condition x -> R -> y: there
// is a path from x to y whose label sequence matches R.
type PathCond struct {
	From Term
	Path *PathExpr
	To   Term
}

func (c *PathCond) String() string {
	return fmt.Sprintf("%s -> %s -> %s", c.From, c.Path, c.To)
}

func (c *PathCond) vars(m map[string]varKind) {
	if c.From.IsVar() {
		m[c.From.Var] = nodeVar
	}
	if c.To.IsVar() {
		m[c.To.Var] = nodeVar
	}
}

// PredCond applies a built-in or external predicate to terms:
// isPostScript(q).
type PredCond struct {
	Name string
	Args []Term
}

func (c *PredCond) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

func (c *PredCond) vars(m map[string]varKind) {
	for _, a := range c.Args {
		if a.IsVar() {
			m[a.Var] = nodeVar
		}
	}
}

// CompareCond compares two terms: l = "year", x != y, year >= 1997.
type CompareCond struct {
	Left  Term
	Op    CompareOp
	Right Term
}

// CompareOp enumerates comparison operators.
type CompareOp int

// Comparison operators of StruQL conditions.
const (
	OpEq CompareOp = iota
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CompareOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

func (c *CompareCond) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

func (c *CompareCond) vars(m map[string]varKind) {
	if c.Left.IsVar() {
		m[c.Left.Var] = nodeVar
	}
	if c.Right.IsVar() {
		m[c.Right.Var] = nodeVar
	}
}

// InSetCond tests an arc variable against a set of labels:
// l in {"Paper", "TechReport"}.
type InSetCond struct {
	Var string
	Set []string
}

func (c *InSetCond) String() string {
	quoted := make([]string, len(c.Set))
	for i, s := range c.Set {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%s in {%s}", c.Var, strings.Join(quoted, ", "))
}

func (c *InSetCond) vars(m map[string]varKind) { m[c.Var] = arcVar }

// NotCond negates a condition: not(isImageFile(q)). Under the
// active-domain semantics, variables appearing only under negation
// range over the graph's active domain.
type NotCond struct {
	Inner Condition
}

func (c *NotCond) String() string { return fmt.Sprintf("not(%s)", c.Inner) }

func (c *NotCond) vars(m map[string]varKind) { c.Inner.vars(m) }

// SkolemTerm is an application of a Skolem function to terms:
// PaperPresentation(x), RootPage(). By definition, applying a Skolem
// function to the same inputs yields the same new node OID.
type SkolemTerm struct {
	Func string
	Args []Term
}

func (s SkolemTerm) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", s.Func, strings.Join(parts, ", "))
}

// AggOp enumerates aggregate functions — the grouping/aggregation
// extension of the query stage the paper anticipates (Sec. 5.2: "we
// could extend it to include grouping and aggregation").
type AggOp int

// Aggregate functions usable as link targets.
const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (op AggOp) String() string {
	return [...]string{"COUNT", "SUM", "MIN", "MAX", "AVG"}[op]
}

// AggTerm is an aggregate applied to a variable, e.g. COUNT(x).
// Used as a link target, it groups the block's binding rows by the
// link's resolved source node and label, aggregating the variable's
// distinct values within each group.
type AggTerm struct {
	Op  AggOp
	Var string
}

func (a AggTerm) String() string { return fmt.Sprintf("%s(%s)", a.Op, a.Var) }

// LinkTarget is an endpoint of a link clause: a Skolem term, a
// variable, a constant, or (as a link's To only) an aggregate.
type LinkTarget struct {
	Skolem *SkolemTerm
	Term   *Term
	Agg    *AggTerm
}

func (t LinkTarget) String() string {
	if t.Skolem != nil {
		return t.Skolem.String()
	}
	if t.Agg != nil {
		return t.Agg.String()
	}
	return t.Term.String()
}

// Link adds an edge in the output graph. Edges may only be added from
// newly created nodes (existing nodes are immutable).
type Link struct {
	From  LinkTarget
	Label LabelTerm
	To    LinkTarget
}

func (l Link) String() string {
	return fmt.Sprintf("%s -> %s -> %s", l.From, l.Label, l.To)
}

// Collect adds a value to a named collection of the output graph.
type Collect struct {
	Collection string
	Target     LinkTarget
}

func (c Collect) String() string {
	return fmt.Sprintf("%s(%s)", c.Collection, c.Target)
}

// PathOp discriminates PathExpr variants.
type PathOp int

// Path-expression operators: a label predicate leaf, concatenation,
// alternation, and Kleene star.
const (
	PathPred PathOp = iota
	PathConcat
	PathAlt
	PathStar
)

// PathExpr is a regular path expression over edge labels. The grammar
// (paper Sec. 3) is R ::= Pred | (R.R) | (R|R) | R*.
type PathExpr struct {
	Op          PathOp
	Pred        *LabelPred // PathPred
	Left, Right *PathExpr  // Concat, Alt; Left only for Star
}

// LabelPred is the leaf of a path expression: a literal label, the
// any-label predicate (written _ or true), or a named external
// predicate on labels.
type LabelPred struct {
	Lit string
	Any bool
	Ext string
}

func (p *LabelPred) String() string {
	switch {
	case p.Any:
		return "_"
	case p.Ext != "":
		return p.Ext
	default:
		return fmt.Sprintf("%q", p.Lit)
	}
}

func (e *PathExpr) String() string {
	switch e.Op {
	case PathPred:
		return e.Pred.String()
	case PathConcat:
		return "(" + e.Left.String() + "." + e.Right.String() + ")"
	case PathAlt:
		return "(" + e.Left.String() + "|" + e.Right.String() + ")"
	case PathStar:
		return e.Left.String() + "*"
	default:
		return "?"
	}
}

// Vars returns the variables of the block subtree rooted at b,
// classified as node or arc variables.
func (b *Block) Vars() map[string]varKind {
	m := map[string]varKind{}
	b.collectVars(m)
	return m
}

func (b *Block) collectVars(m map[string]varKind) {
	for _, c := range b.Where {
		c.vars(m)
	}
	for _, ch := range b.Children {
		ch.collectVars(m)
	}
}

// String renders the query in canonical StruQL syntax.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Input != "" {
		fmt.Fprintf(&sb, "INPUT %s\n", q.Input)
	}
	q.Root.write(&sb, 0)
	if q.Output != "" {
		fmt.Fprintf(&sb, "OUTPUT %s\n", q.Output)
	}
	return sb.String()
}

func (b *Block) write(sb *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	if len(b.Where) > 0 {
		parts := make([]string, len(b.Where))
		for i, c := range b.Where {
			parts[i] = c.String()
		}
		fmt.Fprintf(sb, "%sWHERE %s\n", ind, strings.Join(parts, ", "))
	}
	if len(b.Creates) > 0 {
		parts := make([]string, len(b.Creates))
		for i, c := range b.Creates {
			parts[i] = c.String()
		}
		fmt.Fprintf(sb, "%sCREATE %s\n", ind, strings.Join(parts, ", "))
	}
	if len(b.Links) > 0 {
		parts := make([]string, len(b.Links))
		for i, l := range b.Links {
			parts[i] = l.String()
		}
		fmt.Fprintf(sb, "%sLINK %s\n", ind, strings.Join(parts, ",\n"+ind+"     "))
	}
	if len(b.Collects) > 0 {
		parts := make([]string, len(b.Collects))
		for i, c := range b.Collects {
			parts[i] = c.String()
		}
		fmt.Fprintf(sb, "%sCOLLECT %s\n", ind, strings.Join(parts, ", "))
	}
	for _, ch := range b.Children {
		fmt.Fprintf(sb, "%s{\n", ind)
		ch.write(sb, depth+1)
		fmt.Fprintf(sb, "%s}\n", ind)
	}
}
