package struql

import "strudel/internal/graph"

// Binding is one row of a binding relation, exposed for the
// incremental evaluator and the optimizer: variable name → value.
// Arc variables bind to string atoms carrying the edge label.
type Binding = map[string]graph.Value

// EvalBindings evaluates a condition list (one conjunction) against a
// graph, extending the seed rows, and returns the satisfying binding
// relation. It is the query stage of StruQL in isolation — the
// incremental evaluator uses it to compute a single page's bindings at
// click time (paper Sec. 6, [FER 98c]).
func EvalBindings(input *graph.Graph, reg *Registry, conds []Condition, seed []Binding) ([]Binding, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	varKinds := map[string]varKind{}
	for _, c := range conds {
		c.vars(varKinds)
	}
	ev := &evaluator{
		in:       input,
		out:      nil,
		reg:      reg,
		varKinds: varKinds,
		newNodes: map[graph.OID]bool{},
		nfaCache: map[*PathExpr]*nfa{},
		maxB:     defaultMaxBindings,
	}
	rows := make([]env, 0, len(seed)+1)
	if len(seed) == 0 {
		rows = append(rows, env{})
	}
	for _, s := range seed {
		rows = append(rows, env(s))
	}
	out, err := ev.applyWhere(conds, rows, nil)
	if err != nil {
		return nil, err
	}
	out = dedupe(out)
	res := make([]Binding, len(out))
	for i, r := range out {
		res[i] = Binding(r)
	}
	return res, nil
}
