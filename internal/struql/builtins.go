package struql

import (
	"strings"

	"strudel/internal/graph"
)

// ObjectPred is an external or built-in predicate over graph objects,
// e.g. isPostScript(q). The distinction between collection names and
// external predicates is made at the semantic level: a name that is
// not a collection of the input graph is looked up here.
type ObjectPred func(graph.Value) bool

// MultiPred is an n-ary predicate over graph objects.
type MultiPred func([]graph.Value) bool

// LabelPredFunc is a predicate over edge labels, usable inside regular
// path expressions (e.g. isName* denotes any sequence of labels each
// satisfying isName).
type LabelPredFunc func(string) bool

// Registry holds the predicates available to a query. The zero value
// is not useful; construct with NewRegistry, which installs the
// built-ins.
type Registry struct {
	object map[string]ObjectPred
	multi  map[string]MultiPred
	label  map[string]LabelPredFunc
}

// NewRegistry returns a registry preloaded with STRUDEL's built-in
// predicates: the file-type tests used in the paper's examples
// (isPostScript, isImageFile, isTextFile, isHTMLFile) plus structural
// tests (isNode, isAtom, isInt, isFloat, isBool, isString, isURL,
// isFile).
func NewRegistry() *Registry {
	r := &Registry{
		object: map[string]ObjectPred{},
		multi:  map[string]MultiPred{},
		label:  map[string]LabelPredFunc{},
	}
	fileType := func(t graph.FileType) ObjectPred {
		return func(v graph.Value) bool { return v.Kind() == graph.KindFile && v.FileType() == t }
	}
	kind := func(k graph.Kind) ObjectPred {
		return func(v graph.Value) bool { return v.Kind() == k }
	}
	r.object["isPostScript"] = fileType(graph.FilePostScript)
	r.object["isImageFile"] = fileType(graph.FileImage)
	r.object["isTextFile"] = fileType(graph.FileText)
	r.object["isHTMLFile"] = fileType(graph.FileHTML)
	r.object["isNode"] = func(v graph.Value) bool { return v.IsNode() }
	r.object["isAtom"] = func(v graph.Value) bool { return v.IsAtom() }
	r.object["isInt"] = kind(graph.KindInt)
	r.object["isFloat"] = kind(graph.KindFloat)
	r.object["isBool"] = kind(graph.KindBool)
	r.object["isString"] = kind(graph.KindString)
	r.object["isURL"] = kind(graph.KindURL)
	r.object["isFile"] = kind(graph.KindFile)
	return r
}

// RegisterObject installs (or replaces) a unary object predicate.
func (r *Registry) RegisterObject(name string, fn ObjectPred) { r.object[name] = fn }

// RegisterMulti installs an n-ary object predicate.
func (r *Registry) RegisterMulti(name string, fn MultiPred) { r.multi[name] = fn }

// RegisterLabel installs a label predicate for path expressions.
func (r *Registry) RegisterLabel(name string, fn LabelPredFunc) { r.label[name] = fn }

func (r *Registry) objectPred(name string) (ObjectPred, bool) {
	fn, ok := r.object[name]
	if ok {
		return fn, true
	}
	// Case-insensitive fallback for convenience.
	for k, v := range r.object {
		if strings.EqualFold(k, name) {
			return v, true
		}
	}
	return nil, false
}

func (r *Registry) multiPred(name string) (MultiPred, bool) {
	fn, ok := r.multi[name]
	return fn, ok
}

func (r *Registry) labelPred(name string) (LabelPredFunc, bool) {
	fn, ok := r.label[name]
	return fn, ok
}
