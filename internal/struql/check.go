package struql

import (
	"fmt"
)

// Check performs the static semantic checks the paper imposes on
// StruQL queries (Sec. 3, Semantics):
//
//  1. Each node mentioned in a link or collect clause is either
//     mentioned in a create clause or is a node of the data graph (a
//     bound variable). Concretely: every Skolem function used in link
//     or collect must appear in some create clause of the query. (The
//     set is query-global: by Skolem semantics the same function
//     applied to the same inputs denotes the same node wherever it is
//     written, so fragments may reference pages created elsewhere.)
//  2. Edges can only be added from new nodes — a link's source must be
//     a Skolem term, never a plain variable (existing nodes are
//     immutable).
//  3. Variables used in construction clauses must be bound by the
//     where conditions in scope (the block's own and its ancestors').
//
// Parse runs Check automatically; it is exported for callers that
// build ASTs programmatically.
func Check(q *Query) error {
	created := map[string]bool{}
	collectCreates(q.Root, created)
	return checkBlock(q.Root, created, map[string]bool{})
}

func collectCreates(b *Block, created map[string]bool) {
	for _, ct := range b.Creates {
		created[ct.Func] = true
	}
	for _, ch := range b.Children {
		collectCreates(ch, created)
	}
}

// checkBlock validates one block given the query-global created set
// and the variables bound by ancestor scopes.
func checkBlock(b *Block, created, bound map[string]bool) error {
	bound = copySet(bound)
	for _, c := range b.Where {
		vm := map[string]varKind{}
		c.vars(vm)
		for v := range vm {
			bound[v] = true
		}
	}
	for _, ct := range b.Creates {
		for _, a := range ct.Args {
			if a.IsVar() && !bound[a.Var] {
				return fmt.Errorf("struql: create %s uses unbound variable %q", ct, a.Var)
			}
		}
	}
	for _, l := range b.Links {
		if l.From.Skolem == nil {
			if l.From.Agg != nil {
				return fmt.Errorf("struql: link %s: an aggregate cannot be a link source", l)
			}
			return fmt.Errorf("struql: link %s adds an edge from an existing node; existing nodes are immutable, the source must be a Skolem term", l)
		}
		if err := checkTarget(l.From, created, bound); err != nil {
			return err
		}
		if err := checkTarget(l.To, created, bound); err != nil {
			return err
		}
		if l.Label.Var != "" && !bound[l.Label.Var] {
			return fmt.Errorf("struql: link %s uses unbound arc variable %q", l, l.Label.Var)
		}
	}
	for _, c := range b.Collects {
		if c.Target.Agg != nil {
			return fmt.Errorf("struql: collect %s: aggregates are only allowed as link targets", c)
		}
		if err := checkTarget(c.Target, created, bound); err != nil {
			return err
		}
	}
	for _, ch := range b.Children {
		if err := checkBlock(ch, created, bound); err != nil {
			return err
		}
	}
	return nil
}

func checkTarget(t LinkTarget, created, bound map[string]bool) error {
	if t.Agg != nil {
		if !bound[t.Agg.Var] {
			return fmt.Errorf("struql: aggregate %s uses unbound variable %q", t.Agg, t.Agg.Var)
		}
		return nil
	}
	if t.Skolem != nil {
		if !created[t.Skolem.Func] {
			return fmt.Errorf("struql: %s mentions Skolem function %q that no create clause mentions", t.Skolem, t.Skolem.Func)
		}
		for _, a := range t.Skolem.Args {
			if a.IsVar() && !bound[a.Var] {
				return fmt.Errorf("struql: %s uses unbound variable %q", t.Skolem, a.Var)
			}
		}
		return nil
	}
	if t.Term.IsVar() && !bound[t.Term.Var] {
		return fmt.Errorf("struql: construction clause uses unbound variable %q", t.Term.Var)
	}
	return nil
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
