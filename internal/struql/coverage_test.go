package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// Targeted tests for the less-traveled paths: condition String
// renderings, the active-domain atom enumeration, string-escape
// lexing, comparisons of incomparable values, and in-set filtering of
// pre-bound variables.

func TestConditionStringRenderings(t *testing.T) {
	q := MustParse(`
WHERE C(x), x -> "a" -> y, x -> l -> z, x -> "p"."q" -> w,
      l in {"a", "b"}, not(isImageFile(z)), y != 3, sameAs(x, y)
COLLECT Out(x)`)
	var parts []string
	for _, c := range q.Root.Where {
		parts = append(parts, c.String())
	}
	joined := strings.Join(parts, "; ")
	for _, want := range []string{
		`C(x)`, `x -> "a" -> y`, `x -> l -> z`, `("p"."q")`,
		`l in {"a", "b"}`, `not(isImageFile(z))`, `y != 3`, `sameAs(x, y)`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("renderings missing %q: %s", want, joined)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	// Error messages must name every token kind readably.
	for k := tEOF; k <= tGe; k++ {
		if s := k.String(); s == "" || s == "token" {
			t.Errorf("kind %d renders as %q", k, s)
		}
	}
}

func TestLexerStringEscapes(t *testing.T) {
	q := MustParse(`WHERE x -> "a\n\t\"\\b" -> y COLLECT Out(y)`)
	ec := q.Root.Where[0].(*EdgeCond)
	if ec.Label.Lit != "a\n\t\"\\b" {
		t.Errorf("escaped label = %q", ec.Label.Lit)
	}
	for _, bad := range []string{
		`WHERE x -> "unterminated -> y COLLECT C(y)`,
		`WHERE x -> "bad\qescape" -> y COLLECT C(y)`,
		"WHERE x -> \"new\nline\" -> y COLLECT C(y)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("expected lexer error for %q", bad)
		}
	}
}

func TestActiveDomainIncludesCollectionAtoms(t *testing.T) {
	// Atoms that appear only as collection members are still part of
	// the active domain.
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "x", graph.Int(1))
	g.AddToCollection("C", graph.Str("atom-member"))
	q := MustParse(`WHERE not(p -> "x" -> p) COLLECT All(p)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Output.Collection("All") {
		if v == graph.Str("atom-member") {
			found = true
		}
	}
	if !found {
		t.Errorf("All = %v", res.Output.Collection("All"))
	}
}

func TestCompareIncomparableValues(t *testing.T) {
	// A node never equals an atom; != is satisfied, orderings are not.
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddToCollection("C", graph.NodeValue(n))
	g.AddEdge(n, "v", graph.Int(1))
	q := MustParse(`WHERE C(x), x -> "v" -> v, x != v COLLECT Out(x)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 1 {
		t.Error("incomparable != should hold")
	}
	q2 := MustParse(`WHERE C(x), x -> "v" -> v, x < v COLLECT Out(x)`)
	res2, err := Eval(q2, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Output.Collection("Out")) != 0 {
		t.Error("incomparable < should not hold")
	}
}

func TestInSetFilterOnBoundVariable(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddToCollection("C", graph.NodeValue(n))
	g.AddEdge(n, "keep", graph.Int(1))
	g.AddEdge(n, "drop", graph.Int(2))
	// l binds via the edge condition first (generator), then the set
	// condition filters it.
	q := MustParse(`WHERE C(x), x -> l -> v, l in {"keep"} COLLECT Out(v)`)
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.Collection("Out")
	if len(out) != 1 || out[0] != graph.Int(1) {
		t.Errorf("Out = %v", out)
	}
}

func TestMultiArgPredicate(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddToCollection("C", graph.NodeValue(n))
	g.AddEdge(n, "a", graph.Int(1))
	g.AddEdge(n, "b", graph.Int(1))
	reg := NewRegistry()
	reg.RegisterMulti("eq2", func(vs []graph.Value) bool {
		return len(vs) == 2 && graph.Eq(vs[0], vs[1])
	})
	q := MustParse(`WHERE C(x), x -> "a" -> a, x -> "b" -> b, eq2(a, b) COLLECT Out(x)`)
	res, err := Eval(q, g, &Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Collection("Out")) != 1 {
		t.Error("multi-arg predicate failed")
	}
	// Unknown multi-arg predicate errors.
	q2 := MustParse(`WHERE C(x), x -> "a" -> a, nosuch(a, a) COLLECT Out(x)`)
	if _, err := Eval(q2, g, nil); err == nil {
		t.Error("unknown predicate should fail")
	}
	// Unary predicate invoked with two args through the object
	// registry fallback is rejected too.
	q3 := MustParse(`WHERE C(x), x -> "a" -> a, isInt(a, a) COLLECT Out(x)`)
	if _, err := Eval(q3, g, nil); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestParseSkolemWithConstArgs(t *testing.T) {
	q := MustParse(`WHERE C(x) CREATE F("lit", 3, x) LINK F("lit", 3, x) -> "v" -> x`)
	ct := q.Root.Creates[0]
	if len(ct.Args) != 3 || ct.Args[0].Const != graph.Str("lit") || ct.Args[1].Const != graph.Int(3) {
		t.Errorf("skolem args = %v", ct.Args)
	}
	if !strings.Contains(ct.String(), `F("lit", 3, x)`) {
		t.Errorf("String = %s", ct.String())
	}
}

func TestParseCollectMultiple(t *testing.T) {
	q := MustParse(`WHERE C(x) CREATE F(x) COLLECT A(x), B(F(x)), D("const")`)
	if len(q.Root.Collects) != 3 {
		t.Fatalf("collects = %v", q.Root.Collects)
	}
	if q.Root.Collects[2].Target.Term.Const != graph.Str("const") {
		t.Errorf("const collect = %v", q.Root.Collects[2])
	}
}

func TestParseGraphNameDotted(t *testing.T) {
	q := MustParse(`INPUT src.people.csv WHERE C(x) COLLECT Out(x) OUTPUT out.graph`)
	if q.Input != "src.people.csv" || q.Output != "out.graph" {
		t.Errorf("input=%q output=%q", q.Input, q.Output)
	}
	if _, err := Parse(`INPUT a. WHERE C(x) COLLECT Out(x)`); err == nil {
		t.Error("trailing dot should fail")
	}
}

func TestEvalEmptyParentRows(t *testing.T) {
	// A child under a zero-binding parent constructs nothing and does
	// not error, even with conditions that would need the domain.
	g := graph.New("g")
	q := MustParse(`
WHERE Missing(x)
CREATE F(x)
{ WHERE x -> "v" -> v, v > 3 LINK F(x) -> "big" -> v }`)
	// Missing is not a collection: error expected instead.
	if _, err := Eval(q, g, nil); err == nil {
		t.Error("unknown collection should fail")
	}
	g.DeclareCollection("Missing")
	res, err := Eval(q, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bindings != 0 || res.NewNodes != 0 {
		t.Errorf("result = %+v", res)
	}
}
