// Differential query evaluation (materialized-view maintenance for
// StruQL). A Materialized holds, per query block, the block's binding
// relation keyed so that tuples are addressable, plus a replica of the
// construction stage's effects on the output graph (support-counted
// edges, memberships, Skolem nodes, and aggregate groups). Applying a
// batch of graph.Ops propagates the change through the plan — deleted
// elements are semi-joined against the retained bindings of sibling
// conditions and rechecked, inserted elements seed new derivations —
// and emits a binding delta into the construct replica so the output
// graph stays byte-identical (page-visible order included) to a
// from-scratch run.
//
// The crux is ordering: the from-scratch construct stage processes
// binding rows in bind order, and edge lists in the output graph
// inherit that order. Every row therefore carries a sort key that
// reproduces its from-scratch rank without re-binding (see
// computeSort); keys are derived from monotone per-adjacency-list
// sequence numbers, exploiting that graph mutations either append to
// or splice out of adjacency lists, never reorder them.
package struql

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// MatStats reports what one Apply did.
type MatStats struct {
	// Ops is the number of journal entries applied.
	Ops int
	// RowsRetained counts binding tuples kept without recomputation.
	RowsRetained int
	// RowsRechecked counts tuples re-verified against the new graph.
	RowsRechecked int
	// RowsAdded / RowsRemoved count the binding delta.
	RowsAdded   int
	RowsRemoved int
	// BlocksDifferential / BlocksFallback / BlocksRebound count blocks
	// maintained tuple-at-a-time vs fully re-bound this Apply.
	BlocksDifferential int
	BlocksFallback     int
	BlocksRebound      int
	// ListsRepaired counts output adjacency/collection lists whose
	// order was restored after in-place edits.
	ListsRepaired int
	// Renumbered reports whether output-graph OIDs were reassigned to
	// restore construction order. When false, every OID of the previous
	// output is still valid — callers holding OID-keyed state (path
	// maps, rendered-page tables) can reuse it without re-resolving
	// names.
	Renumbered bool
	// Touched are output-graph nodes whose page-visible state changed.
	Touched []graph.OID
}

// BlockMode describes one block's maintenance mode, for explain.
type BlockMode struct {
	Query int
	Block int
	// Mode is "differential" or "fallback".
	Mode string
	// Reason explains a fallback classification.
	Reason string
	// Rows is the current size of the block's binding relation (-1
	// when no materialization exists yet).
	Rows int
}

// stepKind classifies one recorded plan step for sort-key purposes.
type stepKind uint8

const (
	stepFilter   stepKind = iota // 0 sort units
	stepCollGen                  // 1 unit: collection sequence
	stepEdgeOut                  // 1 unit: out-list sequence of (label,to)
	stepEdgeIn                   // 1 unit: in-list sequence of (label,from)
	stepEdgeScan                 // 2 units: (from OID, out-list sequence)
	stepInSetGen                 // 1 unit: first matching set index
	stepDomain                   // unplannable: forces fallback
)

// matStep is one step of the block's replicated greedy plan: the
// condition plus the boundness snapshot the interpreter would have
// seen, which fixes both the access method and the sort-unit shape.
type matStep struct {
	cond       Condition
	kind       stepKind
	fromBound  bool // EdgeCond: From bound before this step
	toBound    bool // EdgeCond: To bound before this step
	labelBound bool // EdgeCond: label var bound before this step
	units      int
}

// matBlock is one query block's materialized binding relation.
type matBlock struct {
	q    int // query index
	idx  int // pre-order index across all queries (construct order)
	b    *Block
	par  *matBlock
	kids []*matBlock
	// plan is the replicated greedy ordering of b.Where.
	plan []matStep
	// diff reports whether tuples are maintained differentially;
	// fallback blocks re-bind in full when touched.
	diff   bool
	reason string
	units  int // total sort units of one row (diff blocks)
	// parVars are the variables bound by ancestor blocks.
	parVars map[string]bool
	// ownVars are variables appearing in this block's conditions.
	ownVars map[string]bool
	// rows is the binding relation keyed by rowKey(env).
	rows map[string]*mrow
	// index maps a value to the rows whose own-condition variables
	// bind it — the semi-join access path for deletions/insertions.
	index map[graph.Value]map[*mrow]struct{}
	// bound counts the live rows binding each own variable. When
	// bound[v] covers every row, index lookups on v's value are a
	// complete access path (vars appearing only under negation may be
	// unbound in some rows, which the index cannot see).
	bound map[string]int
	// byParent groups rows under their parent tuple.
	byParent map[*mrow]map[*mrow]struct{}
	// rel caches the block's static delta-sensitivity.
	rel *blockRelevance
}

// mrow is one addressable binding tuple.
type mrow struct {
	env   env
	key   string
	block *matBlock
	par   *mrow
	// sort is the full from-scratch rank: the parent's sort followed
	// by nloc local units. Lexicographic order over sort equals the
	// order the sequential construct stage would visit rows.
	sort []uint64
	nloc int
	// cons are the construction effects registered for this row,
	// stored so unregistration is exactly symmetric even after the
	// source values vanish from the data graph.
	cons []conOp
	dead bool
}

// localSort returns the row's own units (sans parent prefix).
func (r *mrow) localSort() []uint64 { return r.sort[len(r.sort)-r.nloc:] }

// ---- monotone sequence numbers over input-graph lists ----

type seqKind uint8

const (
	ctxOut seqKind = iota
	ctxIn
	ctxColl
)

// seqCtx identifies one ordered list of the input graph.
type seqCtx struct {
	kind seqKind
	node graph.OID // ctxOut / ctxIn
	coll string    // ctxColl
}

// seqElem identifies one element of such a list.
type seqElem struct {
	label string // edge label ("" for collections)
	val   graph.Value
}

// seqList assigns each current element a number whose order equals
// the element's list position. Appends take the next counter value;
// removals delete; positions are never renumbered, which is sound
// because graph mutations only append or splice.
type seqList struct {
	m    map[seqElem]uint64
	next uint64
}

// ---- Materialized ----

// Materialized is the differential evaluator's state for a set of
// queries sharing one output graph.
type Materialized struct {
	in      *graph.Graph
	out     *graph.Graph
	reg     *Registry
	queries []*Query
	evs     []*evaluator
	blocks  []*matBlock
	roots   []*mrow // one virtual root row per query
	seqs    map[seqCtx]*seqList
	rowN    int
	maxB    int

	// Construct replica (differential_construct.go).
	presRef map[string]int
	edges   map[conEdgeKey]*supSet
	members map[conMemKey]*supSet
	aggs    map[aggGKey]*aggGroup
	pend    *pending

	// Renumber bookkeeping: per-name minimum construct rank, the rows
	// referencing each name, and the names in construct-rank order.
	// Invariant between applies: order is also ascending-OID order, so
	// each apply only re-ranks the touched names and checks their
	// neighborhoods instead of recomputing every row's rank.
	rank     map[string][]uint64
	rankRow  map[string]*mrow // the row achieving each name's rank
	refRows  map[string]map[*mrow]struct{}
	order    []string
	ordDirty bool

	valid  bool
	reason string
}

// Valid reports whether the materialization can absorb deltas.
func (m *Materialized) Valid() bool { return m != nil && m.valid }

// Reason explains why the materialization is invalid.
func (m *Materialized) Reason() string {
	if m == nil {
		return "not primed"
	}
	return m.reason
}

// Output returns the maintained output graph.
func (m *Materialized) Output() *graph.Graph { return m.out }

// Invalidate marks the materialization unusable.
func (m *Materialized) Invalidate(reason string) {
	if m == nil {
		return
	}
	m.valid, m.reason = false, reason
}

// BlockModes reports the maintenance mode of every block.
func (m *Materialized) BlockModes() []BlockMode {
	if m == nil {
		return nil
	}
	out := make([]BlockMode, 0, len(m.blocks))
	for _, mb := range m.blocks {
		bm := BlockMode{Query: mb.q, Block: mb.idx, Mode: "differential", Rows: len(mb.rows)}
		if !mb.diff {
			bm.Mode, bm.Reason = "fallback", mb.reason
		}
		out = append(out, bm)
	}
	return out
}

// BindingDump renders every block's binding relation in from-scratch
// order, for cross-checking against a fresh evaluation in tests. Node
// values render by data-graph name where one exists — OIDs are an
// allocation accident, so two independently built graphs over the same
// logical data must dump identically.
func (m *Materialized) BindingDump() map[int][]string {
	out := map[int][]string{}
	for _, mb := range m.blocks {
		rows := mb.orderedRows()
		keys := make([]string, len(rows))
		for i, r := range rows {
			keys[i] = m.dumpKey(r.env)
		}
		out[mb.idx] = keys
	}
	return out
}

// dumpKey is rowKey with node values resolved to their data-graph
// names (unnamed nodes keep the raw rendering).
func (m *Materialized) dumpKey(e env) string {
	names := make([]string, 0, len(e))
	for n := range e {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(n)
		sb.WriteByte('=')
		v := e[n]
		if v.IsNode() {
			if nm := m.in.NodeName(v.OID()); nm != "" {
				sb.WriteString(nm)
				sb.WriteByte(';')
				continue
			}
		}
		sb.WriteString(v.String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// orderedRows returns the block's rows in from-scratch order.
func (mb *matBlock) orderedRows() []*mrow {
	rows := make([]*mrow, 0, len(mb.rows))
	for _, r := range mb.rows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return sortLess(rows[i].sort, rows[j].sort) })
	return rows
}

func sortLess(a, b []uint64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ClassifyBlocks reports every block's maintenance mode (differential
// vs fallback, with the fallback reason) without priming any binding
// rows — the static part of the analysis, for explain output. Rows is
// -1 on every entry since no materialization exists.
func ClassifyBlocks(queries []*Query, in *graph.Graph, reg *Registry) ([]BlockMode, error) {
	caps := make([]*Capture, len(queries))
	m, err := NewMaterialized(queries, in, in.NewSibling("classify"), reg, caps, 0)
	if err != nil {
		return nil, err
	}
	modes := m.BlockModes()
	for i := range modes {
		modes[i].Rows = -1
	}
	return modes, nil
}

// NewMaterialized primes a differential evaluator from a completed
// full evaluation: queries were evaluated against in producing out,
// and cap holds every block's binding relation. No graph writes
// happen during priming — the replica state is reconstructed to match
// what the full run already built.
func NewMaterialized(queries []*Query, in, out *graph.Graph, reg *Registry, caps []*Capture, maxBindings int) (*Materialized, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	if maxBindings == 0 {
		maxBindings = defaultMaxBindings
	}
	m := &Materialized{
		in: in, out: out, reg: reg, queries: queries,
		seqs:    map[seqCtx]*seqList{},
		maxB:    maxBindings,
		presRef: map[string]int{},
		edges:   map[conEdgeKey]*supSet{},
		members: map[conMemKey]*supSet{},
		aggs:    map[aggGKey]*aggGroup{},
		rank:    map[string][]uint64{},
		rankRow: map[string]*mrow{},
		refRows: map[string]map[*mrow]struct{}{},
	}
	for qi, q := range queries {
		ev := &evaluator{
			in: in, out: out, reg: reg,
			varKinds: q.Root.Vars(),
			newNodes: map[graph.OID]bool{},
			nfaCache: map[*PathExpr]*nfa{},
			maxB:     maxBindings,
		}
		m.evs = append(m.evs, ev)
		root := &mrow{env: env{}, key: "", sort: nil}
		m.roots = append(m.roots, root)
		if err := m.primeBlock(qi, q.Root, nil, root, caps[qi]); err != nil {
			return nil, err
		}
	}
	if err := m.primeFinish(); err != nil {
		return nil, err
	}
	if err := m.primeOrder(); err != nil {
		return nil, err
	}
	m.valid = true
	return m, nil
}

// primeBlock builds the matBlock tree in pre-order and registers the
// captured rows.
func (m *Materialized) primeBlock(qi int, b *Block, par *matBlock, parentRoot *mrow, cap *Capture) error {
	mb := &matBlock{
		q: qi, idx: len(m.blocks), b: b, par: par,
		rows:     map[string]*mrow{},
		index:    map[graph.Value]map[*mrow]struct{}{},
		byParent: map[*mrow]map[*mrow]struct{}{},
		parVars:  map[string]bool{},
		ownVars:  map[string]bool{},
		bound:    map[string]int{},
	}
	if par != nil {
		for v := range par.parVars {
			mb.parVars[v] = true
		}
		for v := range par.ownVars {
			mb.parVars[v] = true
		}
	}
	vm := map[string]varKind{}
	for _, c := range b.Where {
		c.vars(vm)
	}
	for v := range vm {
		mb.ownVars[v] = true
	}
	m.blocks = append(m.blocks, mb)
	if par != nil {
		par.kids = append(par.kids, mb)
	}
	if err := m.buildPlan(mb); err != nil {
		return err
	}
	if err := m.checkConstructible(mb); err != nil {
		return err
	}
	// Register the captured rows. Captured order is from-scratch bind
	// order, which positional fallback keys rely on.
	var rows []env
	if cap != nil {
		rows = cap.envs[b]
	}
	for i, e := range rows {
		par := m.parentRowOf(mb, e, parentRoot)
		if par == nil {
			return fmt.Errorf("struql: differential prime: no parent tuple for row in block %d", mb.idx)
		}
		var local []uint64
		if mb.diff {
			var err error
			local, err = m.computeSort(mb, e)
			if err != nil {
				return fmt.Errorf("struql: differential prime: %w", err)
			}
		} else {
			local = []uint64{uint64(i)}
		}
		if err := m.addRow(mb, e, par, local, true); err != nil {
			return err
		}
	}
	for _, ch := range b.Children {
		if err := m.primeBlock(qi, ch, mb, parentRoot, cap); err != nil {
			return err
		}
	}
	return nil
}

// parentRowOf finds the parent tuple whose bindings the row extends.
func (m *Materialized) parentRowOf(mb *matBlock, e env, root *mrow) *mrow {
	if mb.par == nil {
		return root
	}
	proj := make(env, len(mb.par.parVars)+len(mb.par.ownVars))
	for v := range mb.par.rowVars() {
		if val, ok := e[v]; ok {
			proj[v] = val
		}
	}
	return mb.par.rows[rowKey(proj)]
}

// rowVars is the set of variables a block's tuples carry: ancestor
// variables plus its own.
func (mb *matBlock) rowVars() map[string]bool {
	out := make(map[string]bool, len(mb.parVars)+len(mb.ownVars))
	for v := range mb.parVars {
		out[v] = true
	}
	for v := range mb.ownVars {
		out[v] = true
	}
	return out
}

// buildPlan replicates the interpreter's greedy condition ordering
// without any rows, recording per-step boundness, and classifies the
// block. The replication is exact because pickNext's scores depend
// only on the bound-variable set and collection existence — both of
// which Apply re-validates (a new collection invalidates the whole
// materialization).
func (m *Materialized) buildPlan(mb *matBlock) error {
	ev := m.evs[mb.q]
	bound := map[string]bool{}
	for v := range mb.parVars {
		bound[v] = true
	}
	remaining := make([]Condition, len(mb.b.Where))
	copy(remaining, mb.b.Where)
	fallback := func(reason string) {
		if mb.diff || mb.reason == "" {
			mb.reason = reason
		}
		mb.diff = false
	}
	mb.diff = true
	for len(remaining) > 0 {
		idx, score := ev.pickNext(remaining, bound)
		if score >= scoreNeedsDomain {
			// Active-domain expansion: delta-sensitivity is the whole
			// active domain, so the block re-binds in full.
			v, _ := firstUnbound(remaining[idx], bound)
			if v == "" {
				return fmt.Errorf("struql: cannot order condition %s", remaining[idx])
			}
			mb.plan = append(mb.plan, matStep{kind: stepDomain})
			fallback("active-domain step over " + v)
			bound[v] = true
			continue
		}
		c := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		st, reason := m.classifyStep(c, bound)
		if reason != "" {
			fallback(reason)
		}
		mb.plan = append(mb.plan, st)
		mb.units += st.units
		// Canonical bound update, exactly as expandRows replays it.
		if _, err := ev.expand(c, nil, bound); err != nil {
			return err
		}
	}
	return nil
}

// classifyStep computes one plan step's kind, unit count and — when
// the condition cannot be maintained tuple-at-a-time — the fallback
// reason.
func (m *Materialized) classifyStep(c Condition, bound map[string]bool) (matStep, string) {
	termBound := func(t Term) bool { return !t.IsVar() || bound[t.Var] }
	st := matStep{cond: c}
	switch c := c.(type) {
	case *MembershipCond:
		if !m.in.HasCollection(c.Collection) {
			// External predicate: a pure filter.
			st.kind = stepFilter
			return st, ""
		}
		if termBound(c.Arg) {
			st.kind = stepFilter
			return st, ""
		}
		st.kind, st.units = stepCollGen, 1
		return st, ""
	case *EdgeCond:
		st.fromBound = termBound(c.From)
		st.toBound = termBound(c.To)
		st.labelBound = c.Label.Var == "" || bound[c.Label.Var]
		switch {
		case st.fromBound && st.toBound && st.labelBound:
			st.kind = stepFilter
		case st.fromBound:
			st.kind, st.units = stepEdgeOut, 1
		case st.toBound:
			// The node-target case walks the reverse list (1 unit); the
			// atom-target case scans all edges (2 units). Which one runs
			// depends on the bound value's kind, so record both shapes
			// and let computeSort pick; the unit count must be fixed per
			// step, so use the scan shape and zero-pad the in-list case.
			st.kind, st.units = stepEdgeIn, 2
		default:
			st.kind, st.units = stepEdgeScan, 2
		}
		return st, ""
	case *PathCond:
		st.kind = stepFilter
		return st, "path expression " + c.String() + " (NFA frontier restart re-binds the block)"
	case *CompareCond:
		st.kind = stepFilter
		return st, ""
	case *InSetCond:
		if bound[c.Var] {
			st.kind = stepFilter
			return st, ""
		}
		st.kind, st.units = stepInSetGen, 1
		return st, ""
	case *PredCond:
		st.kind = stepFilter
		return st, ""
	case *NotCond:
		st.kind = stepFilter
		if reason := m.impureNot(c.Inner); reason != "" {
			return st, reason
		}
		return st, ""
	default:
		st.kind = stepFilter
		return st, fmt.Sprintf("unsupported condition %T", c)
	}
}

// impureNot reports why a negated condition cannot be maintained
// differentially: a negation over graph-reading conditions gains
// tuples on *deletions*, which insertion-seeded propagation cannot
// discover. Pure value-level inner conditions are fine.
func (m *Materialized) impureNot(c Condition) string {
	switch c := c.(type) {
	case *CompareCond, *InSetCond, *PredCond:
		return ""
	case *MembershipCond:
		if !m.in.HasCollection(c.Collection) {
			return "" // external predicate
		}
		return "negated collection membership " + c.String()
	case *NotCond:
		return m.impureNot(c.Inner)
	default:
		return "negated graph condition " + c.String()
	}
}

// ---- sequence lookups and sort-key computation ----

// seqOf returns the sequence list for a context, lazily initializing
// it from the live graph. Lazy initialization is correct mid-Apply
// because the graph already holds the batch's final state and the
// phase-0 replay only updates already-initialized lists.
func (m *Materialized) seqOf(ctx seqCtx) *seqList {
	if l, ok := m.seqs[ctx]; ok {
		return l
	}
	l := &seqList{m: map[seqElem]uint64{}}
	switch ctx.kind {
	case ctxOut:
		m.in.EachOut(ctx.node, func(e graph.Edge) bool {
			el := seqElem{label: e.Label, val: e.To}
			if _, dup := l.m[el]; !dup {
				l.m[el] = l.next
				l.next++
			}
			return true
		})
	case ctxIn:
		for _, e := range m.in.In(ctx.node) {
			el := seqElem{label: e.Label, val: graph.NodeValue(e.From)}
			if _, dup := l.m[el]; !dup {
				l.m[el] = l.next
				l.next++
			}
		}
	case ctxColl:
		for _, v := range m.in.Collection(ctx.coll) {
			el := seqElem{val: v}
			if _, dup := l.m[el]; !dup {
				l.m[el] = l.next
				l.next++
			}
		}
	}
	m.seqs[ctx] = l
	return l
}

// bumpSeq applies one journal op to the initialized sequence lists.
func (m *Materialized) bumpSeq(op graph.Op) {
	touch := func(ctx seqCtx, el seqElem, add bool) {
		l, ok := m.seqs[ctx]
		if !ok {
			return // uninitialized: next access reads the final graph
		}
		if add {
			if _, dup := l.m[el]; !dup {
				l.m[el] = l.next
				l.next++
			}
		} else {
			delete(l.m, el)
		}
	}
	switch op.Kind {
	case graph.OpAddEdge, graph.OpRemoveEdge:
		add := op.Kind == graph.OpAddEdge
		touch(seqCtx{kind: ctxOut, node: op.Edge.From}, seqElem{label: op.Edge.Label, val: op.Edge.To}, add)
		if op.Edge.To.IsNode() {
			touch(seqCtx{kind: ctxIn, node: op.Edge.To.OID()}, seqElem{label: op.Edge.Label, val: graph.NodeValue(op.Edge.From)}, add)
		}
	case graph.OpAddMember, graph.OpRemoveMember:
		touch(seqCtx{kind: ctxColl, coll: op.Coll}, seqElem{val: op.Member}, op.Kind == graph.OpAddMember)
	case graph.OpRemoveNode:
		delete(m.seqs, seqCtx{kind: ctxOut, node: op.Node})
		delete(m.seqs, seqCtx{kind: ctxIn, node: op.Node})
	}
}

// computeSort derives a row's local from-scratch rank from its fully
// bound environment: at every generator step the element the
// interpreter would have scanned is recoverable from the environment,
// and its sequence number is its rank within the scanned list. When a
// step's choice does not bind anything (an Any-label edge), multiple
// elements could have produced the same row and the first derivation
// wins, so the minimum matching sequence number is taken — minima are
// independent across such steps because the choices bind nothing.
func (m *Materialized) computeSort(mb *matBlock, e env) ([]uint64, error) {
	key := make([]uint64, 0, mb.units)
	for _, st := range mb.plan {
		switch st.kind {
		case stepFilter:
			// no units
		case stepCollGen:
			c := st.cond.(*MembershipCond)
			v := e[c.Arg.Var]
			l := m.seqOf(seqCtx{kind: ctxColl, coll: c.Collection})
			s, ok := l.m[seqElem{val: v}]
			if !ok {
				return nil, fmt.Errorf("stale row: %s not in collection %s", v, c.Collection)
			}
			key = append(key, s)
		case stepEdgeOut:
			c := st.cond.(*EdgeCond)
			fv, _ := resolve(c.From, e)
			if !fv.IsNode() {
				return nil, fmt.Errorf("stale row: edge source %s is not a node", fv)
			}
			tv, _ := resolve(c.To, e)
			s, err := m.minOutSeq(fv.OID(), c.Label, e, tv)
			if err != nil {
				return nil, err
			}
			key = append(key, s)
		case stepEdgeIn:
			c := st.cond.(*EdgeCond)
			tv, _ := resolve(c.To, e)
			fv, _ := resolve(c.From, e)
			if tv.IsNode() {
				// Reverse-list walk: 1 meaningful unit, zero-padded to 2.
				if !fv.IsNode() {
					return nil, fmt.Errorf("stale row: edge source %s is not a node", fv)
				}
				s, err := m.minInSeq(tv.OID(), c.Label, e, fv.OID())
				if err != nil {
					return nil, err
				}
				key = append(key, 0, s)
			} else {
				// Atom target: full edge scan in (OID, out-position) order.
				if !fv.IsNode() {
					return nil, fmt.Errorf("stale row: edge source %s is not a node", fv)
				}
				s, err := m.minOutSeq(fv.OID(), c.Label, e, tv)
				if err != nil {
					return nil, err
				}
				key = append(key, uint64(fv.OID()), s)
			}
		case stepEdgeScan:
			c := st.cond.(*EdgeCond)
			fv, _ := resolve(c.From, e)
			tv, _ := resolve(c.To, e)
			if !fv.IsNode() {
				return nil, fmt.Errorf("stale row: edge source %s is not a node", fv)
			}
			s, err := m.minOutSeq(fv.OID(), c.Label, e, tv)
			if err != nil {
				return nil, err
			}
			key = append(key, uint64(fv.OID()), s)
		case stepInSetGen:
			c := st.cond.(*InSetCond)
			s, _ := e[c.Var].AsString()
			found := false
			for i, mv := range c.Set {
				if mv == s {
					key = append(key, uint64(i))
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("stale row: %q not in set", s)
			}
		case stepDomain:
			return nil, fmt.Errorf("computeSort on fallback block")
		}
	}
	return key, nil
}

// stepLabel returns the concrete label a step bound, or "" when the
// label is an unconstrained Any (minimum over all labels applies).
func stepLabel(lt LabelTerm, e env) (string, bool) {
	switch {
	case lt.Var != "":
		v, ok := e[lt.Var]
		if !ok {
			return "", false
		}
		s, _ := v.AsString()
		return s, true
	case lt.Any:
		return "", false
	default:
		return lt.Lit, true
	}
}

// minOutSeq returns the minimum sequence number among the elements of
// from's out-list matching the (label, to) the environment fixes.
func (m *Materialized) minOutSeq(from graph.OID, lt LabelTerm, e env, to graph.Value) (uint64, error) {
	l := m.seqOf(seqCtx{kind: ctxOut, node: from})
	if lbl, exact := stepLabel(lt, e); exact {
		if s, ok := l.m[seqElem{label: lbl, val: to}]; ok {
			return s, nil
		}
		return 0, fmt.Errorf("stale row: edge (%d,%s,%s) missing", from, lbl, to)
	}
	best, found := uint64(0), false
	for el, s := range l.m {
		if el.val == to && (!found || s < best) {
			best, found = s, true
		}
	}
	if !found {
		return 0, fmt.Errorf("stale row: no edge from %d to %s", from, to)
	}
	return best, nil
}

// minInSeq is minOutSeq over a node's reverse list.
func (m *Materialized) minInSeq(to graph.OID, lt LabelTerm, e env, from graph.OID) (uint64, error) {
	l := m.seqOf(seqCtx{kind: ctxIn, node: to})
	fv := graph.NodeValue(from)
	if lbl, exact := stepLabel(lt, e); exact {
		if s, ok := l.m[seqElem{label: lbl, val: fv}]; ok {
			return s, nil
		}
		return 0, fmt.Errorf("stale row: reverse edge (%d,%s,%d) missing", from, lbl, to)
	}
	best, found := uint64(0), false
	for el, s := range l.m {
		if el.val == fv && (!found || s < best) {
			best, found = s, true
		}
	}
	if !found {
		return 0, fmt.Errorf("stale row: no reverse edge from %d", from)
	}
	return best, nil
}

// checkRow re-verifies a fully bound tuple against the current graph:
// with every variable bound, each plan condition acts as an
// independent filter, so the row survives iff every condition keeps
// it. This is exactly the interpreter's own filter semantics, reused.
func (m *Materialized) checkRow(mb *matBlock, e env) (bool, error) {
	ev := m.evs[mb.q]
	for _, st := range mb.plan {
		if st.cond == nil { // domain step: nothing to check
			continue
		}
		bound := make(map[string]bool, len(e))
		for v := range e {
			bound[v] = true
		}
		res, err := ev.expand(st.cond, []env{e}, bound)
		if err != nil {
			return false, err
		}
		if len(res) == 0 {
			return false, nil
		}
	}
	return true, nil
}
