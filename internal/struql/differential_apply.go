package struql

import (
	"fmt"
	"sort"

	"strudel/internal/graph"
)

// Apply propagates a batch of journaled input-graph mutations through
// the materialized binding relations and the construct replica. The
// input graph must already be in its post-batch state (the ops are
// the drained journal of the mutations that produced it). On error
// the materialization invalidates itself and the caller must fall
// back to a full evaluation.
func (m *Materialized) Apply(ops []graph.Op) (*MatStats, error) {
	if m == nil || !m.valid {
		return nil, fmt.Errorf("struql: differential state invalid: %s", m.Reason())
	}
	st := &MatStats{Ops: len(ops)}
	fail := func(err error) (*MatStats, error) {
		m.Invalidate(err.Error())
		return nil, err
	}
	for _, op := range ops {
		if op.Kind == graph.OpNewCollection {
			// A new collection can flip HasCollection and with it every
			// replicated plan; re-prime from scratch.
			return fail(fmt.Errorf("struql: new collection %q changes plan space", op.Coll))
		}
	}
	// Phase 0: roll the sequence numbering forward.
	for _, op := range ops {
		m.bumpSeq(op)
	}
	m.beginApply()
	added := map[*matBlock]map[*mrow]struct{}{}
	removed := map[*matBlock]map[*mrow]struct{}{}
	for _, mb := range m.blocks {
		if err := m.processBlock(mb, ops, added, removed, st); err != nil {
			return fail(err)
		}
	}
	if m.rowN > m.maxB {
		return fail(fmt.Errorf("struql: differential binding relation exceeded %d rows", m.maxB))
	}
	if err := m.finishApply(st); err != nil {
		return fail(err)
	}
	st.RowsRetained = m.rowN - st.RowsAdded
	for _, mb := range m.blocks {
		if mb.diff {
			st.BlocksDifferential++
		} else {
			st.BlocksFallback++
		}
	}
	return st, nil
}

// processBlock maintains one block's relation for the batch.
func (m *Materialized) processBlock(mb *matBlock, ops []graph.Op, added, removed map[*matBlock]map[*mrow]struct{}, st *MatStats) error {
	var parAdd, parRem map[*mrow]struct{}
	if mb.par != nil {
		parAdd, parRem = added[mb.par], removed[mb.par]
	}
	blkAdd := map[*mrow]struct{}{}
	blkRem := map[*mrow]struct{}{}
	added[mb], removed[mb] = blkAdd, blkRem

	// Cascade: tuples under a removed parent are gone regardless of
	// this block's own conditions.
	for pr := range parRem {
		for r := range mb.byParent[pr] {
			m.dropRow(r, st)
			blkRem[r] = struct{}{}
		}
	}

	cands, candDirty := m.removalCandidates(mb, ops)
	seeds, seedDirty := m.additionSeeds(mb, ops)
	dirty := candDirty || seedDirty || (!mb.diff && m.relevantTo(mb, ops))
	if dirty {
		st.BlocksRebound++
		return m.rebindBlock(mb, blkAdd, blkRem, st)
	}
	if mb.diff {
		// Deletions: semi-join the removed elements against the rows
		// that bound them, then recheck each survivor against the new
		// graph (recheck, not counting, so multiset derivations are
		// handled: a tuple stays as long as any derivation remains).
		for r := range cands {
			if r.dead {
				continue
			}
			st.RowsRechecked++
			ok, err := m.checkRow(mb, r.env)
			if err != nil {
				return err
			}
			if !ok {
				m.dropRow(r, st)
				blkRem[r] = struct{}{}
				continue
			}
			// Survivor: its derivation rank may still have moved (e.g.
			// an edge was deleted and re-inserted, shifting to the list
			// tail).
			local, err := m.computeSort(mb, r.env)
			if err != nil {
				return fmt.Errorf("struql: differential resort: %w", err)
			}
			m.resortRow(r, local)
		}
		// Insertions: each added element seeds the condition it can
		// match; joining consistent parent tuples and solving the full
		// conjunction finds every new tuple (a genuinely new tuple
		// must use at least one added element at some condition).
		for _, sd := range seeds {
			if err := m.solveSeed(mb, sd, blkAdd, st); err != nil {
				return err
			}
		}
	}
	// New parent tuples get their subtree solved outright.
	for pr := range parAdd {
		if err := m.solveParent(mb, pr, blkAdd, st); err != nil {
			return err
		}
	}
	return nil
}

// dropRow removes a tuple from the relation and the construct
// replica.
func (m *Materialized) dropRow(r *mrow, st *MatStats) {
	if r.dead {
		return
	}
	r.dead = true
	mb := r.block
	delete(mb.rows, r.key)
	for v := range mb.ownVars {
		if val, ok := r.env[v]; ok {
			if set := mb.index[val]; set != nil {
				delete(set, r)
				if len(set) == 0 {
					delete(mb.index, val)
				}
			}
			mb.bound[v]--
		}
	}
	if set := mb.byParent[r.par]; set != nil {
		delete(set, r)
		if len(set) == 0 {
			delete(mb.byParent, r.par)
		}
	}
	m.rowN--
	st.RowsRemoved++
	m.unregisterRow(r)
}

// addRow inserts a tuple. During priming the construct replica only
// records state; afterwards it also schedules output-graph edits.
func (m *Materialized) addRow(mb *matBlock, e env, par *mrow, local []uint64, prime bool) error {
	key := rowKey(e)
	if _, dup := mb.rows[key]; dup {
		return nil
	}
	full := make([]uint64, 0, len(par.sort)+len(local))
	full = append(full, par.sort...)
	full = append(full, local...)
	r := &mrow{env: e, key: key, block: mb, par: par, sort: full, nloc: len(local)}
	mb.rows[key] = r
	for v := range mb.ownVars {
		if val, ok := e[v]; ok {
			set := mb.index[val]
			if set == nil {
				set = map[*mrow]struct{}{}
				mb.index[val] = set
			}
			set[r] = struct{}{}
			mb.bound[v]++
		}
	}
	set := mb.byParent[par]
	if set == nil {
		set = map[*mrow]struct{}{}
		mb.byParent[par] = set
	}
	set[r] = struct{}{}
	m.rowN++
	return m.registerRow(r, prime)
}

// resortRow installs a new local rank for a retained tuple and
// rewrites the rank prefix of every descendant tuple, marking all
// affected output lists for order repair.
func (m *Materialized) resortRow(r *mrow, local []uint64) {
	old := r.localSort()
	same := len(old) == len(local)
	if same {
		for i := range old {
			if old[i] != local[i] {
				same = false
				break
			}
		}
	}
	if same {
		return
	}
	full := make([]uint64, 0, len(r.par.sort)+len(local))
	full = append(full, r.par.sort...)
	full = append(full, local...)
	r.sort, r.nloc = full, len(local)
	m.markRowOrderDirty(r)
	m.reprefixDescendants(r)
}

func (m *Materialized) reprefixDescendants(r *mrow) {
	for _, kb := range r.block.kids {
		for cr := range kb.byParent[r] {
			local := cr.localSort()
			full := make([]uint64, 0, len(r.sort)+len(local))
			full = append(full, r.sort...)
			full = append(full, local...)
			cr.sort, cr.nloc = full, len(local)
			m.markRowOrderDirty(cr)
			m.reprefixDescendants(cr)
		}
	}
}

// parentRows returns the block's parent tuples in from-scratch order.
func (m *Materialized) parentRows(mb *matBlock) []*mrow {
	if mb.par == nil {
		return []*mrow{m.roots[mb.q]}
	}
	return mb.par.orderedRows()
}

// rebindBlock recomputes the whole relation with the interpreter and
// diffs it against the materialized one. Tuple order within one
// parent group is the interpreter's own output order, so positional
// ranks are exact; retained tuples keep their identity (and their
// descendants), only their ranks move.
func (m *Materialized) rebindBlock(mb *matBlock, blkAdd, blkRem map[*mrow]struct{}, st *MatStats) error {
	ev := m.evs[mb.q]
	for _, par := range m.parentRows(mb) {
		rows, err := ev.applyWhere(mb.b.Where, []env{par.env}, nil)
		if err != nil {
			return err
		}
		rows = dedupe(rows)
		fresh := make(map[string]int, len(rows))
		for i, e := range rows {
			fresh[rowKey(e)] = i
		}
		for r := range mb.byParent[par] {
			if _, keep := fresh[r.key]; !keep {
				m.dropRow(r, st)
				blkRem[r] = struct{}{}
			}
		}
		for i, e := range rows {
			key := rowKey(e)
			if r, ok := mb.rows[key]; ok {
				local, err := m.rankOf(mb, e, i)
				if err != nil {
					return err
				}
				m.resortRow(r, local)
				continue
			}
			local, err := m.rankOf(mb, e, i)
			if err != nil {
				return err
			}
			if err := m.addRow(mb, e, par, local, false); err != nil {
				return err
			}
			blkAdd[mb.rows[key]] = struct{}{}
			st.RowsAdded++
		}
	}
	return nil
}

// rankOf picks the rank scheme: derivation-derived units for
// differential blocks, the interpreter's positional order for
// fallback blocks.
func (m *Materialized) rankOf(mb *matBlock, e env, pos int) ([]uint64, error) {
	if mb.diff {
		return m.computeSort(mb, e)
	}
	return []uint64{uint64(pos)}, nil
}

// solveParent computes a new parent tuple's rows in this block.
func (m *Materialized) solveParent(mb *matBlock, par *mrow, blkAdd map[*mrow]struct{}, st *MatStats) error {
	ev := m.evs[mb.q]
	rows, err := ev.applyWhere(mb.b.Where, []env{par.env}, nil)
	if err != nil {
		return err
	}
	rows = dedupe(rows)
	for i, e := range rows {
		key := rowKey(e)
		if _, dup := mb.rows[key]; dup {
			continue
		}
		local, err := m.rankOf(mb, e, i)
		if err != nil {
			return err
		}
		if err := m.addRow(mb, e, par, local, false); err != nil {
			return err
		}
		blkAdd[mb.rows[key]] = struct{}{}
		st.RowsAdded++
	}
	return nil
}

// seed is one partially bound environment derived from an added
// element matched against one condition.
type seed struct {
	vals env
}

// solveSeed joins a seed against every consistent parent tuple and
// solves the block's full conjunction from the merged environment.
// Keeping the seeded condition in the conjunction re-verifies the
// element's presence for free. When the seed grounds a variable the
// parent block binds in every row, the parent's value index narrows
// the join to the few consistent tuples instead of scanning the whole
// parent relation — the difference between O(parent) and O(change) per
// added element.
func (m *Materialized) solveSeed(mb *matBlock, sd seed, blkAdd map[*mrow]struct{}, st *MatStats) error {
	ev := m.evs[mb.q]
	for _, par := range m.seedParents(mb, sd) {
		merged := make(env, len(par.env)+len(sd.vals))
		ok := true
		for k, v := range par.env {
			merged[k] = v
		}
		for k, v := range sd.vals {
			if pv, bound := merged[k]; bound && pv != v {
				ok = false
				break
			}
			merged[k] = v
		}
		if !ok {
			continue
		}
		rows, err := ev.applyWhere(mb.b.Where, []env{merged}, nil)
		if err != nil {
			return err
		}
		for _, e := range dedupe(rows) {
			key := rowKey(e)
			if _, dup := mb.rows[key]; dup {
				continue
			}
			local, err := m.computeSort(mb, e)
			if err != nil {
				return err
			}
			if err := m.addRow(mb, e, par, local, false); err != nil {
				return err
			}
			blkAdd[mb.rows[key]] = struct{}{}
			st.RowsAdded++
		}
	}
	return nil
}

// seedParents returns the parent tuples a seed could consistently join,
// in from-scratch order. When some seed value is indexed by the parent
// block AND that variable is bound in every live parent row (bound
// count equals relation size — vars under negation may be unbound and
// invisible to the index), the index rows bound the join; they are a
// superset of the consistent tuples (the index mixes the block's own
// variables), which solveSeed's merge check filters exactly. Otherwise
// every parent row is a candidate.
func (m *Materialized) seedParents(mb *matBlock, sd seed) []*mrow {
	pb := mb.par
	if pb == nil {
		return m.parentRows(mb)
	}
	var best map[*mrow]struct{}
	found := false
	for k, v := range sd.vals {
		if !pb.ownVars[k] || pb.bound[k] != len(pb.rows) {
			continue
		}
		set := pb.index[v]
		if !found || len(set) < len(best) {
			best, found = set, true
		}
	}
	if !found {
		return m.parentRows(mb)
	}
	out := make([]*mrow, 0, len(best))
	for r := range best {
		if !r.dead {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return sortLess(out[i].sort, out[j].sort) })
	return out
}

// removalCandidates semi-joins the batch's removed elements against
// the block's index: a tuple is a candidate iff some removed element
// matches one of the block's conditions at the tuple's own bindings.
// Conditions anchored only by constants have no index entry; they
// make the whole block dirty instead (rare: a fully ground
// condition).
func (m *Materialized) removalCandidates(mb *matBlock, ops []graph.Op) (map[*mrow]struct{}, bool) {
	cands := map[*mrow]struct{}{}
	dirty := false
	collect := func(v graph.Value) {
		for r := range mb.index[v] {
			cands[r] = struct{}{}
		}
	}
	for _, op := range ops {
		for _, stp := range mb.plan {
			switch c := stp.cond.(type) {
			case *EdgeCond:
				if op.Kind != graph.OpRemoveEdge {
					continue
				}
				anchor, ground, match := edgeAnchor(c, op.Edge)
				if !match {
					continue
				}
				if ground {
					dirty = true
					continue
				}
				collect(anchor)
			case *MembershipCond:
				if op.Kind != graph.OpRemoveMember || c.Collection != op.Coll {
					continue
				}
				if !c.Arg.IsVar() {
					if c.Arg.Const == op.Member {
						dirty = true
					}
					continue
				}
				collect(op.Member)
			}
		}
	}
	return cands, dirty
}

// edgeAnchor matches a condition against a concrete edge and returns
// one variable-position value to probe the index with. ground means
// the condition has no variable positions (probe impossible); match
// is false when a constant position disagrees with the edge.
func edgeAnchor(c *EdgeCond, e graph.Edge) (anchor graph.Value, ground, match bool) {
	if !c.Label.Any && c.Label.Var == "" && c.Label.Lit != e.Label {
		return graph.Value{}, false, false
	}
	if !c.From.IsVar() && c.From.Const != graph.NodeValue(e.From) {
		return graph.Value{}, false, false
	}
	if !c.To.IsVar() && c.To.Const != e.To {
		return graph.Value{}, false, false
	}
	switch {
	case c.From.IsVar():
		return graph.NodeValue(e.From), false, true
	case c.To.IsVar():
		return e.To, false, true
	case c.Label.Var != "":
		return graph.Str(e.Label), false, true
	default:
		return graph.Value{}, true, true
	}
}

// additionSeeds derives the partial environments the batch's added
// elements can contribute through each condition.
func (m *Materialized) additionSeeds(mb *matBlock, ops []graph.Op) ([]seed, bool) {
	var seeds []seed
	dirty := false
	for _, op := range ops {
		for _, stp := range mb.plan {
			switch c := stp.cond.(type) {
			case *EdgeCond:
				if op.Kind != graph.OpAddEdge {
					continue
				}
				vals, ground, match := edgeSeed(c, op.Edge)
				if !match {
					continue
				}
				if ground {
					dirty = true
					continue
				}
				seeds = append(seeds, seed{vals: vals})
			case *MembershipCond:
				if op.Kind != graph.OpAddMember || c.Collection != op.Coll {
					continue
				}
				if !c.Arg.IsVar() {
					if c.Arg.Const == op.Member {
						dirty = true
					}
					continue
				}
				seeds = append(seeds, seed{vals: env{c.Arg.Var: op.Member}})
			}
		}
	}
	return seeds, dirty
}

// edgeSeed binds a condition's variable positions to a concrete added
// edge, checking constant positions and intra-condition consistency
// (the same variable appearing twice must receive one value).
func edgeSeed(c *EdgeCond, e graph.Edge) (vals env, ground, match bool) {
	if !c.Label.Any && c.Label.Var == "" && c.Label.Lit != e.Label {
		return nil, false, false
	}
	if !c.From.IsVar() && c.From.Const != graph.NodeValue(e.From) {
		return nil, false, false
	}
	if !c.To.IsVar() && c.To.Const != e.To {
		return nil, false, false
	}
	vals = env{}
	put := func(v string, val graph.Value) bool {
		if old, dup := vals[v]; dup && old != val {
			return false
		}
		vals[v] = val
		return true
	}
	if c.From.IsVar() && !put(c.From.Var, graph.NodeValue(e.From)) {
		return nil, false, false
	}
	if c.To.IsVar() && !put(c.To.Var, e.To) {
		return nil, false, false
	}
	if c.Label.Var != "" && !put(c.Label.Var, graph.Str(e.Label)) {
		return nil, false, false
	}
	if len(vals) == 0 {
		return nil, true, true
	}
	return vals, false, true
}

// relevantTo reports whether any op in the batch could affect a
// fallback block's conditions (label/collection/node granularity —
// the NFA frontier test: a delta whose labels no automaton transition
// accepts cannot change any path-condition result).
func (m *Materialized) relevantTo(mb *matBlock, ops []graph.Op) bool {
	rel := mb.relevance(m)
	for _, op := range ops {
		switch op.Kind {
		case graph.OpAddEdge, graph.OpRemoveEdge:
			if rel.anyLabel || rel.labels[op.Edge.Label] {
				return true
			}
		case graph.OpAddMember, graph.OpRemoveMember:
			if rel.colls[op.Coll] {
				return true
			}
		case graph.OpAddNode, graph.OpRemoveNode:
			if rel.nodes {
				return true
			}
		}
	}
	return false
}

// blockRelevance is the static delta-sensitivity of a block.
type blockRelevance struct {
	labels   map[string]bool
	anyLabel bool
	colls    map[string]bool
	nodes    bool
}

func (mb *matBlock) relevance(m *Materialized) *blockRelevance {
	if mb.rel != nil {
		return mb.rel
	}
	rel := &blockRelevance{labels: map[string]bool{}, colls: map[string]bool{}}
	var walkPath func(p *PathExpr)
	walkPath = func(p *PathExpr) {
		if p == nil {
			return
		}
		if p.Pred != nil {
			if p.Pred.Any || p.Pred.Ext != "" {
				rel.anyLabel = true
			} else {
				rel.labels[p.Pred.Lit] = true
			}
		}
		walkPath(p.Left)
		walkPath(p.Right)
	}
	var walkCond func(c Condition)
	walkCond = func(c Condition) {
		switch c := c.(type) {
		case *EdgeCond:
			if c.Label.Any || c.Label.Var != "" {
				rel.anyLabel = true
			} else {
				rel.labels[c.Label.Lit] = true
			}
		case *PathCond:
			walkPath(c.Path)
			rel.nodes = true // unbound sources range over all nodes
		case *MembershipCond:
			if m.in.HasCollection(c.Collection) {
				rel.colls[c.Collection] = true
			}
		case *NotCond:
			walkCond(c.Inner)
		}
	}
	for _, c := range mb.b.Where {
		walkCond(c)
	}
	for _, stp := range mb.plan {
		if stp.kind == stepDomain {
			rel.nodes = true // active domain spans all nodes and atoms
			rel.anyLabel = true
			for _, cl := range m.in.Collections() {
				rel.colls[cl] = true
			}
		}
	}
	mb.rel = rel
	return rel
}
