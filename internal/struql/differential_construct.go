// The construct replica: a support-counted mirror of everything the
// sequential construction stage put into the output graph. Every
// output edge, collection membership and Skolem node is attributed to
// the binding tuples (or aggregate groups) that derive it; a binding
// delta translates into reference-count moves, and only structures
// whose count crosses zero touch the graph. Page-visible order (the
// per-label adjacency order templates iterate, and collection order)
// is restored afterwards from the tuples' from-scratch ranks.
package struql

import (
	"fmt"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// conTarget identifies an edge target or collection member: a Skolem
// node by output-graph name (stable across OID churn), or a concrete
// value copied from the binding.
type conTarget struct {
	name string
	val  graph.Value
}

type conEdgeKey struct {
	from  string // Skolem name of the source (links only leave new nodes)
	label string
	to    conTarget
}

type conMemKey struct {
	coll string
	to   conTarget
}

// supTag is one derivation of an output structure: a (tuple, clause)
// pair, or an aggregate group.
type supTag struct {
	row *mrow
	li  int
	agg *aggGroup
}

// supSet is the support of one output structure. present mirrors
// whether the structure physically exists in the output graph.
type supSet struct {
	set     map[supTag]struct{}
	present bool
}

// aggGKey identifies one aggregate group: the link clause within its
// block plus the resolved source and label (the from-scratch grouping
// key).
type aggGKey struct {
	block int
	li    int
	from  string
	label string
}

// aggGroup accumulates one aggregate edge's contributions. cur/has
// track the currently emitted value.
type aggGroup struct {
	key      aggGKey
	op       AggOp
	contribs map[*mrow]graph.Value
	cur      graph.Value
	has      bool
}

// rank is the group's from-scratch emission rank: aggregates flush
// after their block's rows (phase 1 vs 0) in group-creation order,
// which is the rank of the earliest contributing tuple.
func (g *aggGroup) rank() []uint64 {
	var best []uint64
	for r := range g.contribs {
		if best == nil || sortLess(r.sort, best) {
			best = r.sort
		}
	}
	k := make([]uint64, 0, len(best)+3)
	k = append(k, uint64(g.key.block), 1)
	k = append(k, best...)
	k = append(k, uint64(g.key.li))
	return k
}

// conOp kinds.
const (
	conCreate = iota
	conEdge
	conMember
	conAgg
)

// conOp is one construction effect of one tuple, stored at
// registration so unregistration is exactly symmetric even after the
// deriving values left the data graph.
type conOp struct {
	kind int
	name string // conCreate
	edge conEdgeKey
	mem  conMemKey
	li   int
	agg  aggGKey
}

// listKey identifies one per-label adjacency list of the output
// graph.
type listKey struct {
	from  string
	label string
}

// pending accumulates the structures an Apply touched; resolved into
// graph edits by finishApply.
type pending struct {
	edges map[conEdgeKey]struct{}
	mems  map[conMemKey]struct{}
	aggs  map[*aggGroup]struct{}
	names map[string]struct{}
	lists map[listKey]struct{}
	colls map[string]struct{}
	oids  map[graph.OID]struct{}
	// rowRefs maps each name to the rows whose reference to it changed
	// this apply (registered, unregistered, or re-ranked) — the only
	// rows that can move the name's construct rank.
	rowRefs map[string]map[*mrow]struct{}
}

func (m *Materialized) beginApply() {
	m.pend = &pending{
		edges:   map[conEdgeKey]struct{}{},
		mems:    map[conMemKey]struct{}{},
		aggs:    map[*aggGroup]struct{}{},
		names:   map[string]struct{}{},
		lists:   map[listKey]struct{}{},
		colls:   map[string]struct{}{},
		oids:    map[graph.OID]struct{}{},
		rowRefs: map[string]map[*mrow]struct{}{},
	}
}

// noteRowRef records one changed (name, row) reference for the
// incremental re-ranking.
func (m *Materialized) noteRowRef(n string, r *mrow) {
	if m.pend == nil {
		return
	}
	set := m.pend.rowRefs[n]
	if set == nil {
		set = map[*mrow]struct{}{}
		m.pend.rowRefs[n] = set
	}
	set[r] = struct{}{}
}

// checkConstructible validates the block's construction clauses
// against what the replica can maintain. Links always leave Skolem
// nodes (the evaluator rejects anything else as mutating an existing
// object), so this only guards against queries a full run would have
// rejected anyway.
func (m *Materialized) checkConstructible(mb *matBlock) error {
	for _, l := range mb.b.Links {
		if l.From.Skolem == nil {
			return fmt.Errorf("struql: differential: link %s from non-Skolem target", l)
		}
	}
	return nil
}

// skolemName replicates the evaluator's Skolem key (the output-graph
// node name serving as the memo table).
func (m *Materialized) skolemName(t *SkolemTerm, e env) (string, error) {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		v, ok := resolve(a, e)
		if !ok {
			return "", fmt.Errorf("struql: %s: variable %q unbound", t, a.Var)
		}
		args[i] = skolemArgKey(m.in, v)
	}
	return t.Func + "(" + strings.Join(args, ",") + ")", nil
}

func (m *Materialized) bumpRef(name string, d int) {
	m.presRef[name] += d
	if m.pend != nil {
		m.pend.names[name] = struct{}{}
	}
}

// registerRow mirrors construct() for one tuple into the replica.
// During priming (prime=true) it only records state the full run
// already materialized; afterwards support transitions schedule graph
// edits.
func (m *Materialized) registerRow(r *mrow, prime bool) error {
	b := r.block.b
	var cons []conOp
	for ci := range b.Creates {
		name, err := m.skolemName(&b.Creates[ci], r.env)
		if err != nil {
			return err
		}
		cons = append(cons, conOp{kind: conCreate, name: name})
		m.bumpRef(name, 1)
	}
	for li := range b.Links {
		l := &b.Links[li]
		fromName, err := m.skolemName(l.From.Skolem, r.env)
		if err != nil {
			return err
		}
		m.bumpRef(fromName, 1)
		var label string
		if l.Label.Var != "" {
			lv, ok := r.env[l.Label.Var]
			if !ok {
				return fmt.Errorf("struql: link %s: arc variable %q unbound", l, l.Label.Var)
			}
			label, _ = lv.AsString()
		} else {
			label = l.Label.Lit
		}
		if l.To.Agg != nil {
			v, ok := r.env[l.To.Agg.Var]
			if !ok {
				return fmt.Errorf("struql: aggregate %s: variable %q unbound", l.To.Agg, l.To.Agg.Var)
			}
			gk := aggGKey{block: r.block.idx, li: li, from: fromName, label: label}
			g := m.aggs[gk]
			if g == nil {
				g = &aggGroup{key: gk, op: l.To.Agg.Op, contribs: map[*mrow]graph.Value{}}
				m.aggs[gk] = g
			}
			g.contribs[r] = v
			if m.pend != nil {
				m.pend.aggs[g] = struct{}{}
			}
			cons = append(cons, conOp{kind: conAgg, agg: gk})
			continue
		}
		to, err := m.conTargetOf(l.To, r.env, true)
		if err != nil {
			return err
		}
		ek := conEdgeKey{from: fromName, label: label, to: to}
		m.addSup(m.edges, ek, supTag{row: r, li: li}, prime)
		if m.pend != nil {
			m.pend.edges[ek] = struct{}{}
		}
		cons = append(cons, conOp{kind: conEdge, edge: ek, li: li})
	}
	for ci := range b.Collects {
		c := &b.Collects[ci]
		to, err := m.conTargetOf(c.Target, r.env, true)
		if err != nil {
			return err
		}
		mk := conMemKey{coll: c.Collection, to: to}
		m.addSup(m.members, mk, supTag{row: r, li: len(b.Links) + ci}, prime)
		if m.pend != nil {
			m.pend.mems[mk] = struct{}{}
		}
		cons = append(cons, conOp{kind: conMember, mem: mk, li: len(b.Links) + ci})
	}
	r.cons = cons
	m.linkRefs(r)
	return nil
}

// eachConName visits every Skolem name one construction effect
// references, in the order the sequential construct stage would touch
// them (edge source before edge target).
func eachConName(op conOp, f func(string)) {
	switch op.kind {
	case conCreate:
		f(op.name)
	case conEdge:
		f(op.edge.from)
		if op.edge.to.name != "" {
			f(op.edge.to.name)
		}
	case conAgg:
		f(op.agg.from)
	case conMember:
		if op.mem.to.name != "" {
			f(op.mem.to.name)
		}
	}
}

// linkRefs / unlinkRefs maintain the name → referencing-rows index the
// incremental renumbering needs.
func (m *Materialized) linkRefs(r *mrow) {
	for _, op := range r.cons {
		eachConName(op, func(n string) {
			set := m.refRows[n]
			if set == nil {
				set = map[*mrow]struct{}{}
				m.refRows[n] = set
			}
			set[r] = struct{}{}
			m.noteRowRef(n, r)
		})
	}
}

func (m *Materialized) unlinkRefs(r *mrow) {
	for _, op := range r.cons {
		eachConName(op, func(n string) {
			if set := m.refRows[n]; set != nil {
				delete(set, r)
				if len(set) == 0 {
					delete(m.refRows, n)
				}
			}
			m.noteRowRef(n, r)
		})
	}
}

// conTargetOf resolves a link/collect target symbolically. Skolem
// targets resolve by name (bumping the presence count when counted);
// term targets copy the bound value.
func (m *Materialized) conTargetOf(t LinkTarget, e env, count bool) (conTarget, error) {
	if t.Skolem != nil {
		name, err := m.skolemName(t.Skolem, e)
		if err != nil {
			return conTarget{}, err
		}
		if count {
			m.bumpRef(name, 1)
		}
		return conTarget{name: name}, nil
	}
	v, ok := resolve(*t.Term, e)
	if !ok {
		return conTarget{}, fmt.Errorf("struql: variable %q unbound in construction clause", t.Term.Var)
	}
	return conTarget{val: v}, nil
}

func (m *Materialized) addSup(sups interface{}, key interface{}, tag supTag, prime bool) {
	switch ss := sups.(type) {
	case map[conEdgeKey]*supSet:
		k := key.(conEdgeKey)
		s := ss[k]
		if s == nil {
			s = &supSet{set: map[supTag]struct{}{}}
			ss[k] = s
		}
		s.set[tag] = struct{}{}
		if prime {
			s.present = true
		}
	case map[conMemKey]*supSet:
		k := key.(conMemKey)
		s := ss[k]
		if s == nil {
			s = &supSet{set: map[supTag]struct{}{}}
			ss[k] = s
		}
		s.set[tag] = struct{}{}
		if prime {
			s.present = true
		}
	}
}

// unregisterRow reverses registerRow from the stored effect list.
func (m *Materialized) unregisterRow(r *mrow) {
	m.unlinkRefs(r)
	for _, op := range r.cons {
		switch op.kind {
		case conCreate:
			m.bumpRef(op.name, -1)
		case conEdge:
			m.bumpRef(op.edge.from, -1)
			if op.edge.to.name != "" {
				m.bumpRef(op.edge.to.name, -1)
			}
			if s := m.edges[op.edge]; s != nil {
				delete(s.set, supTag{row: r, li: op.li})
				m.pend.edges[op.edge] = struct{}{}
			}
		case conMember:
			if op.mem.to.name != "" {
				m.bumpRef(op.mem.to.name, -1)
			}
			if s := m.members[op.mem]; s != nil {
				delete(s.set, supTag{row: r, li: op.li})
				m.pend.mems[op.mem] = struct{}{}
			}
		case conAgg:
			m.bumpRef(op.agg.from, -1)
			if g := m.aggs[op.agg]; g != nil {
				delete(g.contribs, r)
				m.pend.aggs[g] = struct{}{}
			}
		}
	}
	r.cons = nil
}

// markRowOrderDirty flags every output list a tuple contributes to:
// its rank changed, so those lists may need their order restored. The
// names it references are flagged too — a rank move can shift which
// row references a node first, i.e. the node's construct position.
func (m *Materialized) markRowOrderDirty(r *mrow) {
	if m.pend == nil {
		return
	}
	for _, op := range r.cons {
		eachConName(op, func(n string) { m.noteRowRef(n, r) })
		switch op.kind {
		case conEdge:
			m.pend.lists[listKey{from: op.edge.from, label: op.edge.label}] = struct{}{}
		case conMember:
			m.pend.colls[op.mem.coll] = struct{}{}
		case conAgg:
			if g := m.aggs[op.agg]; g != nil {
				m.pend.aggs[g] = struct{}{}
			}
		}
	}
}

// primeFinish reconstructs the aggregate groups' current values and
// their support tags after priming. No graph writes: the full run
// already emitted these edges.
func (m *Materialized) primeFinish() error {
	for _, g := range m.aggs {
		val, err := m.aggValue(g)
		if err != nil {
			return err
		}
		g.cur, g.has = val, true
		ek := conEdgeKey{from: g.key.from, label: g.key.label, to: valueTarget(m.out, val)}
		m.addSup(m.edges, ek, supTag{agg: g}, true)
	}
	return nil
}

// valueTarget wraps an aggregate value as a conTarget. Aggregate
// values are atoms, but route node values through the name mapping
// for symmetry.
func valueTarget(out *graph.Graph, v graph.Value) conTarget {
	if v.IsNode() {
		if n := out.NodeName(v.OID()); n != "" {
			return conTarget{name: n}
		}
	}
	return conTarget{val: v}
}

// aggValue recomputes a group: contributions in tuple-rank order,
// first-seen distinct values, then the aggregate — exactly the
// sequential accumulator's semantics.
func (m *Materialized) aggValue(g *aggGroup) (graph.Value, error) {
	rows := make([]*mrow, 0, len(g.contribs))
	for r := range g.contribs {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return sortLess(rows[i].sort, rows[j].sort) })
	seen := map[graph.Value]struct{}{}
	vals := make([]graph.Value, 0, len(rows))
	for _, r := range rows {
		v := g.contribs[r]
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			vals = append(vals, v)
		}
	}
	return Aggregate(g.op, vals)
}

// finishApply turns the pending support transitions into output-graph
// edits, then restores page-visible order, in a fixed sequence: node
// creations, aggregate moves, structure removals, structure
// additions, node removals, order repair. The sequence guarantees
// every edit's endpoints exist when the edit runs.
func (m *Materialized) finishApply(st *MatStats) error {
	p := m.pend
	// 1. Nodes whose presence count rose from zero.
	names := make([]string, 0, len(p.names))
	for n := range p.names {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if m.presRef[n] > 0 {
			if _, ok := m.out.NodeByName(n); !ok {
				id := m.out.NewNode(n)
				p.oids[id] = struct{}{}
			}
		}
	}
	// 2. Aggregate groups: recompute touched groups, moving their edge
	// support when the value changed.
	for g := range p.aggs {
		oldKey := conEdgeKey{from: g.key.from, label: g.key.label, to: valueTarget(m.out, g.cur)}
		if len(g.contribs) == 0 {
			if g.has {
				if s := m.edges[oldKey]; s != nil {
					delete(s.set, supTag{agg: g})
					p.edges[oldKey] = struct{}{}
				}
			}
			delete(m.aggs, g.key)
			p.lists[listKey{from: g.key.from, label: g.key.label}] = struct{}{}
			continue
		}
		val, err := m.aggValue(g)
		if err != nil {
			return err
		}
		if !g.has || val != g.cur {
			if g.has {
				if s := m.edges[oldKey]; s != nil {
					delete(s.set, supTag{agg: g})
					p.edges[oldKey] = struct{}{}
				}
			}
			nk := conEdgeKey{from: g.key.from, label: g.key.label, to: valueTarget(m.out, val)}
			m.addSup(m.edges, nk, supTag{agg: g}, false)
			p.edges[nk] = struct{}{}
			g.cur, g.has = val, true
		}
		// Rank may have moved even when the value did not.
		p.lists[listKey{from: g.key.from, label: g.key.label}] = struct{}{}
	}
	// 3+4. Edges and memberships whose support crossed zero. Removals
	// run before additions; list repair normalizes insertion order.
	// shadows collects node-valued targets that removals may orphan: a
	// from-scratch build only holds an unnamed data-node entry in the
	// output graph while something references it, so orphans must go
	// for the graphs to stay byte-identical.
	shadows := map[graph.OID]struct{}{}
	for ek, s := range edgesTouched(p.edges, m.edges) {
		want := len(s.set) > 0
		if want == s.present {
			if !want {
				delete(m.edges, ek)
			}
			continue
		}
		fromID, ok := m.out.NodeByName(ek.from)
		if !ok {
			return fmt.Errorf("struql: differential: source node %q missing", ek.from)
		}
		to, err := m.resolveTargetValue(ek.to)
		if err != nil {
			return err
		}
		if want {
			if err := m.out.AddEdge(fromID, ek.label, to); err != nil {
				return err
			}
		} else {
			m.out.RemoveEdge(fromID, ek.label, to)
			delete(m.edges, ek)
			if to.IsNode() {
				shadows[to.OID()] = struct{}{}
			}
		}
		s.present = want
		p.lists[listKey{from: ek.from, label: ek.label}] = struct{}{}
		p.oids[fromID] = struct{}{}
	}
	for mk, s := range memsTouched(p.mems, m.members) {
		want := len(s.set) > 0
		if want == s.present {
			if !want {
				delete(m.members, mk)
			}
			continue
		}
		to, err := m.resolveTargetValue(mk.to)
		if err != nil {
			return err
		}
		if want {
			m.out.AddToCollection(mk.coll, to)
		} else {
			m.out.RemoveFromCollection(mk.coll, to)
			delete(m.members, mk)
			if to.IsNode() {
				shadows[to.OID()] = struct{}{}
			}
		}
		s.present = want
		p.colls[mk.coll] = struct{}{}
		if to.IsNode() {
			p.oids[to.OID()] = struct{}{}
		}
	}
	// 5. Nodes whose presence count fell to zero.
	for _, n := range names {
		if m.presRef[n] <= 0 {
			delete(m.presRef, n)
			if id, ok := m.out.NodeByName(n); ok {
				p.oids[id] = struct{}{}
				for _, e := range m.out.Out(id) {
					if e.To.IsNode() {
						shadows[e.To.OID()] = struct{}{}
					}
				}
				m.out.RemoveNode(id)
			}
		}
	}
	// 5b. Garbage-collect orphaned shadow entries (unnamed, edgeless,
	// in no collection). Not page-visible, so not Touched.
	m.collectShadows(shadows)
	// 5c. A from-scratch run instantiates each node at its first
	// reference, so a node's enumeration position can shift whenever the
	// derivation set changes: a new node gets an OID past every retained
	// one, and adding or removing a tuple can move which row references
	// a surviving node first. Renumber whenever the computed construct
	// order no longer matches the current OID order.
	if err := m.renumberOutput(p, st); err != nil {
		return err
	}
	// 6. Order repair: per-label adjacency lists and collections are
	// re-sorted by the minimum from-scratch rank of each element's
	// surviving derivations.
	for lk := range p.lists {
		fromID, ok := m.out.NodeByName(lk.from)
		if !ok {
			continue // node removed; nothing to repair
		}
		vals := m.out.OutLabel(fromID, lk.label)
		if len(vals) < 2 {
			continue
		}
		ranked := m.rankValues(vals, func(v graph.Value) []uint64 {
			s := m.edges[conEdgeKey{from: lk.from, label: lk.label, to: valueTarget(m.out, v)}]
			return minRank(s)
		})
		if m.out.SetLabelOrder(fromID, lk.label, ranked) {
			st.ListsRepaired++
			p.oids[fromID] = struct{}{}
		}
	}
	for coll := range p.colls {
		vals := m.out.Collection(coll)
		if len(vals) < 2 {
			continue
		}
		ranked := m.rankValues(vals, func(v graph.Value) []uint64 {
			s := m.members[conMemKey{coll: coll, to: valueTarget(m.out, v)}]
			return minRank(s)
		})
		if m.out.SetMemberOrder(coll, ranked) {
			st.ListsRepaired++
		}
	}
	// Touched output nodes, for selective regeneration.
	st.Touched = make([]graph.OID, 0, len(p.oids))
	for id := range p.oids {
		st.Touched = append(st.Touched, id)
	}
	sort.Slice(st.Touched, func(i, j int) bool { return st.Touched[i] < st.Touched[j] })
	m.pend = nil
	return nil
}

// rowNameRank is the rank at which one tuple first references a name:
// the tuple's from-scratch rank extended by the position of its first
// effect touching the name. The sequential construct stage
// instantiates a node at exactly that point.
func (m *Materialized) rowNameRank(r *mrow, name string) []uint64 {
	for o, op := range r.cons {
		sub := -1
		switch op.kind {
		case conCreate:
			if op.name == name {
				sub = 0
			}
		case conEdge:
			if op.edge.from == name {
				sub = 0
			} else if op.edge.to.name == name {
				sub = 1
			}
		case conAgg:
			// The from node is always created by an earlier clause (a
			// bare aggregate source is rejected at eval time).
			if op.agg.from == name {
				sub = 0
			}
		case conMember:
			if op.mem.to.name == name {
				sub = 0
			}
		}
		if sub >= 0 {
			k := make([]uint64, 0, len(r.sort)+4)
			k = append(k, uint64(r.block.idx), 0)
			k = append(k, r.sort...)
			return append(k, uint64(o), uint64(sub))
		}
	}
	return nil
}

// nameRankOf is a name's construct rank: the minimum rowNameRank over
// the live tuples referencing it (and the tuple achieving it), nil
// when nothing references it.
func (m *Materialized) nameRankOf(name string) ([]uint64, *mrow) {
	var best []uint64
	var row *mrow
	for r := range m.refRows[name] {
		if k := m.rowNameRank(r, name); k != nil && (best == nil || sortLess(k, best)) {
			best, row = k, r
		}
	}
	return best, row
}

// primeOrder computes every name's construct rank after priming and
// records the construct order. A full build emits named nodes in this
// exact order, so the OID invariant should hold from the start; if it
// does not, the first apply re-checks in full.
func (m *Materialized) primeOrder() error {
	m.order = m.order[:0]
	for n := range m.refRows {
		if k, r := m.nameRankOf(n); k != nil {
			m.rank[n] = k
			m.rankRow[n] = r
			m.order = append(m.order, n)
		}
	}
	sort.Slice(m.order, func(i, j int) bool {
		return sortLess(m.rank[m.order[i]], m.rank[m.order[j]])
	})
	ordered, err := m.orderMatchesOIDs()
	if err != nil {
		return err
	}
	m.ordDirty = !ordered
	return nil
}

// orderMatchesOIDs reports whether the live OIDs enumerate in
// construct-rank order.
func (m *Materialized) orderMatchesOIDs() (bool, error) {
	var last graph.OID
	for i, n := range m.order {
		id, ok := m.out.NodeByName(n)
		if !ok {
			return false, fmt.Errorf("struql: differential: node %q missing during order check", n)
		}
		if i > 0 && id <= last {
			return false, nil
		}
		last = id
	}
	return true, nil
}

func rankEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// orderPos finds the index holding the given rank (ranks are distinct
// and m.order is rank-sorted).
func (m *Materialized) orderPos(rank []uint64) int {
	return sort.Search(len(m.order), func(i int) bool {
		return !sortLess(m.rank[m.order[i]], rank)
	})
}

func (m *Materialized) orderRemove(n string, rank []uint64) error {
	i := m.orderPos(rank)
	if i >= len(m.order) || m.order[i] != n {
		return fmt.Errorf("struql: differential: construct order lost track of %q", n)
	}
	m.order = append(m.order[:i], m.order[i+1:]...)
	return nil
}

func (m *Materialized) orderInsert(n string, rank []uint64) {
	i := sort.Search(len(m.order), func(i int) bool {
		return sortLess(rank, m.rank[m.order[i]])
	})
	m.order = append(m.order, "")
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = n
}

// neighborsOrdered reports whether a name's OID sits between its
// construct-order neighbors' OIDs — the local slice of the global
// invariant, sufficient because everything else kept both its rank and
// its OID.
func (m *Materialized) neighborsOrdered(n string) (bool, error) {
	rank, ok := m.rank[n]
	if !ok {
		return true, nil
	}
	i := m.orderPos(rank)
	if i >= len(m.order) || m.order[i] != n {
		return false, fmt.Errorf("struql: differential: construct order lost track of %q", n)
	}
	id, ok := m.out.NodeByName(n)
	if !ok {
		return false, fmt.Errorf("struql: differential: node %q missing during renumber", n)
	}
	if i > 0 {
		pid, ok := m.out.NodeByName(m.order[i-1])
		if !ok {
			return false, fmt.Errorf("struql: differential: node %q missing during renumber", m.order[i-1])
		}
		if pid >= id {
			return false, nil
		}
	}
	if i+1 < len(m.order) {
		nid, ok := m.out.NodeByName(m.order[i+1])
		if !ok {
			return false, fmt.Errorf("struql: differential: node %q missing during renumber", m.order[i+1])
		}
		if id >= nid {
			return false, nil
		}
	}
	return true, nil
}

// reRank recomputes one name's construct rank given the rows whose
// reference to it changed this apply. While the row that achieved the
// previous minimum is untouched, the minimum can only improve, so
// min(old, changed rows) settles it in O(changed) — crucial for hub
// names (a root page every tuple links from) whose full reference set
// is the whole relation. Only when the minimum's own row was dropped
// or re-ranked does the full set need a scan.
func (m *Materialized) reRank(n string, chg map[*mrow]struct{}) ([]uint64, *mrow) {
	oldRank, had := m.rank[n]
	if !had {
		// New name: every referencing row registered this apply, so the
		// full set is the changed set.
		return m.nameRankOf(n)
	}
	minRow := m.rankRow[n]
	if _, touched := chg[minRow]; touched || minRow == nil || minRow.dead {
		return m.nameRankOf(n)
	}
	best, row := oldRank, minRow
	for r := range chg {
		if r.dead {
			continue
		}
		if _, still := m.refRows[n][r]; !still {
			continue
		}
		if k := m.rowNameRank(r, n); k != nil && sortLess(k, best) {
			best, row = k, r
		}
	}
	return best, row
}

// renumberOutput keeps output-graph OIDs enumerating in from-scratch
// construction order without recomputing every row's rank: only the
// names the apply touched (p.names covers every name whose reference
// set, or a referencing row's rank, changed) are re-ranked and
// repositioned in the maintained construct order, and the graph is
// renumbered only when a repositioned name's OID falls out of line
// with its neighbors'. Touched OIDs in p are remapped in place.
func (m *Materialized) renumberOutput(p *pending, st *MatStats) error {
	if len(p.rowRefs) == 0 && !m.ordDirty {
		return nil
	}
	names := make([]string, 0, len(p.rowRefs))
	for n := range p.rowRefs {
		names = append(names, n)
	}
	sort.Strings(names)
	var moved []string
	for _, n := range names {
		newRank, newRow := m.reRank(n, p.rowRefs[n])
		oldRank, had := m.rank[n]
		switch {
		case newRank == nil && !had:
			continue
		case newRank == nil:
			if err := m.orderRemove(n, oldRank); err != nil {
				return err
			}
			delete(m.rank, n)
			delete(m.rankRow, n)
		case !had:
			m.rank[n], m.rankRow[n] = newRank, newRow
			m.orderInsert(n, newRank)
			moved = append(moved, n)
		case rankEq(oldRank, newRank):
			m.rankRow[n] = newRow
			continue
		default:
			if err := m.orderRemove(n, oldRank); err != nil {
				return err
			}
			m.rank[n], m.rankRow[n] = newRank, newRow
			m.orderInsert(n, newRank)
			moved = append(moved, n)
		}
	}
	violated := false
	if m.ordDirty {
		ok, err := m.orderMatchesOIDs()
		if err != nil {
			return err
		}
		violated = !ok
		m.ordDirty = false
	}
	if !violated {
		for _, n := range moved {
			ok, err := m.neighborsOrdered(n)
			if err != nil {
				return err
			}
			if !ok {
				violated = true
				break
			}
		}
	}
	if !violated {
		return nil
	}
	mapping := m.out.RenumberNodes(m.order)
	if mapping == nil {
		return fmt.Errorf("struql: differential: renumbering failed (node set out of sync)")
	}
	st.Renumbered = true
	oids := make(map[graph.OID]struct{}, len(p.oids))
	for id := range p.oids {
		if n, ok := mapping[id]; ok {
			oids[n] = struct{}{}
		} else {
			oids[id] = struct{}{}
		}
	}
	p.oids = oids
	return nil
}

// collectShadows removes candidate output-graph nodes that nothing
// references anymore: unnamed edge-target shadows a scratch build
// would never have materialized.
func (m *Materialized) collectShadows(cands map[graph.OID]struct{}) {
	for id := range cands {
		if m.out.NodeName(id) != "" {
			continue // a real (Skolem) node; presRef owns its lifetime
		}
		if len(m.out.Out(id)) > 0 || len(m.out.In(id)) > 0 {
			continue
		}
		member := false
		for _, c := range m.out.Collections() {
			if m.out.InCollection(c, graph.NodeValue(id)) {
				member = true
				break
			}
		}
		if member {
			continue
		}
		m.out.RemoveNode(id)
	}
}

// edgesTouched / memsTouched narrow the support maps to the touched
// keys (dropping keys whose support vanished entirely before the
// supSet was created — impossible, but nil-safe).
func edgesTouched(keys map[conEdgeKey]struct{}, all map[conEdgeKey]*supSet) map[conEdgeKey]*supSet {
	out := make(map[conEdgeKey]*supSet, len(keys))
	for k := range keys {
		if s := all[k]; s != nil {
			out[k] = s
		}
	}
	return out
}

func memsTouched(keys map[conMemKey]struct{}, all map[conMemKey]*supSet) map[conMemKey]*supSet {
	out := make(map[conMemKey]*supSet, len(keys))
	for k := range keys {
		if s := all[k]; s != nil {
			out[k] = s
		}
	}
	return out
}

// resolveTargetValue turns a symbolic target into a concrete value
// against the live output graph.
func (m *Materialized) resolveTargetValue(t conTarget) (graph.Value, error) {
	if t.name == "" {
		return t.val, nil
	}
	id, ok := m.out.NodeByName(t.name)
	if !ok {
		return graph.Value{}, fmt.Errorf("struql: differential: node %q missing", t.name)
	}
	return graph.NodeValue(id), nil
}

// minRank is the smallest rank among a structure's derivations; nil
// (sorted last, order preserved) when unsupported.
func minRank(s *supSet) []uint64 {
	if s == nil {
		return nil
	}
	var best []uint64
	for t := range s.set {
		r := tagRank(t)
		if best == nil || sortLess(r, best) {
			best = r
		}
	}
	return best
}

// tagRank is a derivation's from-scratch emission rank: block index,
// then phase (row clauses before aggregate flush), then the tuple's
// rank, then the clause index.
func tagRank(t supTag) []uint64 {
	if t.agg != nil {
		return t.agg.rank()
	}
	r := t.row
	k := make([]uint64, 0, len(r.sort)+3)
	k = append(k, uint64(r.block.idx), 0)
	k = append(k, r.sort...)
	k = append(k, uint64(t.li))
	return k
}

// rankValues stably sorts values by their ranks (nil ranks last, in
// current order).
func (m *Materialized) rankValues(vals []graph.Value, rank func(graph.Value) []uint64) []graph.Value {
	type rv struct {
		v graph.Value
		r []uint64
	}
	rvs := make([]rv, len(vals))
	for i, v := range vals {
		rvs[i] = rv{v: v, r: rank(v)}
	}
	sort.SliceStable(rvs, func(i, j int) bool {
		a, b := rvs[i].r, rvs[j].r
		if a == nil || b == nil {
			return b == nil && a != nil
		}
		return sortLess(a, b)
	})
	out := make([]graph.Value, len(rvs))
	for i, x := range rvs {
		out[i] = x.v
	}
	return out
}
