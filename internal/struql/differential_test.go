package struql

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"strudel/internal/graph"
)

// diffHarness primes a Materialized over queries and cross-checks
// every Apply against a from-scratch evaluation: output graphs must
// agree on all page-visible state (node names, per-label adjacency
// order, collection order) and the maintained binding relations must
// match a fresh prime tuple-for-tuple in from-scratch order.
type diffHarness struct {
	t       *testing.T
	g       *graph.Graph
	queries []*Query
	reg     *Registry
	mat     *Materialized
	log     *graph.ChangeLog
}

func newDiffHarness(t *testing.T, g *graph.Graph, reg *Registry, srcs ...string) *diffHarness {
	t.Helper()
	h := &diffHarness{t: t, g: g, reg: reg}
	for _, s := range srcs {
		h.queries = append(h.queries, MustParse(s))
	}
	out := g.NewSibling("site")
	caps := make([]*Capture, len(h.queries))
	for i, q := range h.queries {
		caps[i] = NewCapture()
		if _, err := Eval(q, g, &Options{Output: out, Capture: caps[i], Workers: 1, Registry: reg}); err != nil {
			t.Fatalf("prime eval: %v", err)
		}
	}
	mat, err := NewMaterialized(h.queries, g, out, reg, caps, 0)
	if err != nil {
		t.Fatalf("NewMaterialized: %v", err)
	}
	h.mat = mat
	h.log = graph.NewChangeLog()
	g.Watch(h.log)
	return h
}

// apply drains the journal, applies it differentially, and verifies
// against from-scratch evaluation.
func (h *diffHarness) apply() *MatStats {
	h.t.Helper()
	ops, ok := h.log.Take()
	if !ok {
		h.t.Fatal("change log overflowed")
	}
	st, err := h.mat.Apply(ops)
	if err != nil {
		h.t.Fatalf("Apply: %v", err)
	}
	h.verify()
	return st
}

func (h *diffHarness) verify() {
	h.t.Helper()
	ref := h.g.NewSibling("ref")
	caps := make([]*Capture, len(h.queries))
	for i, q := range h.queries {
		caps[i] = NewCapture()
		if _, err := Eval(q, h.g, &Options{Output: ref, Capture: caps[i], Workers: 1, Registry: h.reg}); err != nil {
			h.t.Fatalf("reference eval: %v", err)
		}
	}
	if got, want := graphFingerprint(h.mat.Output()), graphFingerprint(ref); got != want {
		h.t.Fatalf("maintained graph diverges from from-scratch:\n got:\n%s\nwant:\n%s", got, want)
	}
	refMat, err := NewMaterialized(h.queries, h.g, ref, h.reg, caps, 0)
	if err != nil {
		h.t.Fatalf("reference prime: %v", err)
	}
	got, want := h.mat.BindingDump(), refMat.BindingDump()
	for idx, wrows := range want {
		grows := got[idx]
		if fmt.Sprint(grows) != fmt.Sprint(wrows) {
			h.t.Fatalf("block %d binding relation diverges:\n got %v\nwant %v", idx, grows, wrows)
		}
	}
}

// graphFingerprint renders page-visible graph state: the named node
// set, each node's per-label target order (output nodes by name), and
// each collection's member order.
func graphFingerprint(g *graph.Graph) string {
	render := func(v graph.Value) string {
		if v.IsNode() {
			if n := g.NodeName(v.OID()); n != "" {
				return "@" + n
			}
		}
		return v.String()
	}
	var names []string
	for _, id := range g.Nodes() {
		if n := g.NodeName(id); n != "" {
			names = append(names, n)
		}
		// Unnamed nodes are edge-target shadows with no outgoing
		// structure; they are invisible to page generation.
	}
	sort.Strings(names)
	var sb strings.Builder
	fmt.Fprintf(&sb, "nodes=%d\n", len(names))
	for _, n := range names {
		id, _ := g.NodeByName(n)
		labels := map[string]bool{}
		for _, e := range g.Out(id) {
			labels[e.Label] = true
		}
		var ll []string
		for l := range labels {
			ll = append(ll, l)
		}
		sort.Strings(ll)
		fmt.Fprintf(&sb, "%s:\n", n)
		for _, l := range ll {
			parts := []string{}
			for _, v := range g.OutLabel(id, l) {
				parts = append(parts, render(v))
			}
			fmt.Fprintf(&sb, "  %s -> %s\n", l, strings.Join(parts, ", "))
		}
	}
	colls := g.Collections()
	sort.Strings(colls)
	for _, c := range colls {
		parts := []string{}
		for _, v := range g.Collection(c) {
			parts = append(parts, render(v))
		}
		fmt.Fprintf(&sb, "coll %s: %s\n", c, strings.Join(parts, ", "))
	}
	return sb.String()
}

func TestDifferentialFig3EditScript(t *testing.T) {
	g := fig2Graph(t)
	h := newDiffHarness(t, g, nil, fig3)

	pub1, _ := g.NodeByName("pub1")
	pub2, _ := g.NodeByName("pub2")

	// Retitle: remove + re-add an attribute edge.
	g.RemoveEdge(pub1, "title", graph.Str("Specifying Representations..."))
	g.AddEdge(pub1, "title", graph.Str("Specifying Representations, 2nd ed."))
	st := h.apply()
	if st.RowsAdded == 0 || st.RowsRemoved == 0 {
		t.Errorf("retitle: stats = %+v, want both adds and removes", st)
	}

	// Shared category page gains a paper.
	g.AddEdge(pub2, "category", graph.Str("Architecture Specifications"))
	h.apply()

	// A brand-new publication: node, membership, attributes.
	pub3 := g.NewNode("pub3")
	g.AddToCollection("Publications", graph.NodeValue(pub3))
	g.AddEdge(pub3, "title", graph.Str("A Third Paper"))
	g.AddEdge(pub3, "year", graph.Int(1997))
	g.AddEdge(pub3, "category", graph.Str("Semistructured Data"))
	h.apply()

	// Remove a publication from the collection: its pages vanish.
	g.RemoveFromCollection("Publications", graph.NodeValue(pub2))
	h.apply()

	// Delete a node outright: the journal carries the cascade.
	g.RemoveNode(pub3)
	h.apply()

	// Reinstate pub2; its pages come back, ordered after the
	// retained pub1 pages (its membership is now the newest).
	g.AddToCollection("Publications", graph.NodeValue(pub2))
	h.apply()
}

func TestDifferentialDeleteThenReinsertSameEdge(t *testing.T) {
	g := fig2Graph(t)
	h := newDiffHarness(t, g, nil, fig3)
	pub1, _ := g.NodeByName("pub1")
	title := graph.Str("Specifying Representations...")

	// Same edge out and back in within ONE batch: the tuple survives
	// the recheck but its derivation rank moves to the list tail.
	g.RemoveEdge(pub1, "title", title)
	g.AddEdge(pub1, "title", title)
	st := h.apply()
	if st.RowsRechecked == 0 {
		t.Errorf("delete+reinsert: no rows rechecked: %+v", st)
	}

	// And across two batches.
	g.RemoveEdge(pub1, "year", graph.Int(1997))
	h.apply()
	g.AddEdge(pub1, "year", graph.Int(1997))
	h.apply()
}

func TestDifferentialEmptyThenRepopulate(t *testing.T) {
	g := fig2Graph(t)
	h := newDiffHarness(t, g, nil, fig3)
	pub1, _ := g.NodeByName("pub1")
	pub2, _ := g.NodeByName("pub2")

	// Empty the driving block completely: every derived page must be
	// withdrawn (only the unconditional root/abstracts pages remain).
	g.RemoveFromCollection("Publications", graph.NodeValue(pub1))
	g.RemoveFromCollection("Publications", graph.NodeValue(pub2))
	st := h.apply()
	if st.RowsAdded != 0 || st.RowsRemoved == 0 {
		t.Errorf("empty: stats = %+v", st)
	}
	if _, ok := h.mat.Output().NodeByName("PaperPresentation(pub1)"); ok {
		t.Error("PaperPresentation(pub1) survived an empty block")
	}

	// Repopulate in reverse order: pages reappear, ordered pub2-first.
	g.AddToCollection("Publications", graph.NodeValue(pub2))
	g.AddToCollection("Publications", graph.NodeValue(pub1))
	st = h.apply()
	if st.RowsAdded == 0 {
		t.Errorf("repopulate: stats = %+v", st)
	}
}

func TestDifferentialCyclicPathFrontier(t *testing.T) {
	// A cyclic path expression: the NFA frontier revisits deleted
	// nodes. Path blocks fall back to a full re-bind when a relevant
	// label changes; correctness over the cycle is what matters.
	g := graph.New("cyc")
	a, b, c := g.NewNode("a"), g.NewNode("b"), g.NewNode("c")
	g.AddEdge(a, "next", graph.NodeValue(b))
	g.AddEdge(b, "next", graph.NodeValue(c))
	g.AddEdge(c, "next", graph.NodeValue(a))
	g.AddEdge(a, "tag", graph.Str("start"))
	g.AddToCollection("Roots", graph.NodeValue(a))

	h := newDiffHarness(t, g, nil, `
WHERE Roots(r), r -> ("next")* -> x
CREATE Page(x)
LINK Page(x) -> "of" -> x
COLLECT Pages(Page(x))`)
	modes := h.mat.BlockModes()
	if modes[0].Mode != "fallback" {
		t.Fatalf("path block mode = %+v, want fallback", modes[0])
	}

	// Sever the cycle: c and a's self-reach survive, b..c unreachable
	// pages are withdrawn.
	g.RemoveEdge(a, "next", graph.NodeValue(b))
	h.apply()

	// Delete a node on the (former) cycle and re-close it elsewhere:
	// the frontier would revisit the deleted node.
	g.RemoveNode(b)
	g.AddEdge(a, "next", graph.NodeValue(c))
	h.apply()

	// Unrelated-label edit: the frontier test prunes the re-bind.
	g.AddEdge(c, "color", graph.Str("red"))
	st := h.apply()
	if st.BlocksRebound != 0 {
		t.Errorf("unrelated label forced %d rebinds, want 0", st.BlocksRebound)
	}
}

func TestDifferentialDuplicateDerivations(t *testing.T) {
	// One binding tuple with two derivations (an Any-label condition
	// matched by two parallel edges): deleting one derivation must
	// keep the tuple, deleting both must remove it.
	g := graph.New("dup")
	x := g.NewNode("x")
	g.AddEdge(x, "alpha", graph.Str("v"))
	g.AddEdge(x, "beta", graph.Str("v"))
	g.AddToCollection("Objs", graph.NodeValue(x))

	h := newDiffHarness(t, g, nil, `
WHERE Objs(o), o -> _ -> w
CREATE Page(o)
LINK Page(o) -> "val" -> w`)

	g.RemoveEdge(x, "alpha", graph.Str("v"))
	st := h.apply()
	if st.RowsRemoved != 0 {
		t.Errorf("first derivation removed the tuple: %+v", st)
	}
	if _, ok := h.mat.Output().NodeByName("Page(x)"); !ok {
		t.Fatal("Page(x) gone while a derivation remains")
	}

	g.RemoveEdge(x, "beta", graph.Str("v"))
	st = h.apply()
	if st.RowsRemoved == 0 {
		t.Errorf("last derivation did not remove the tuple: %+v", st)
	}
	if _, ok := h.mat.Output().NodeByName("Page(x)"); ok {
		t.Fatal("Page(x) survived with zero derivations")
	}
}

func TestDifferentialAggregates(t *testing.T) {
	g := graph.New("agg")
	mk := func(name string, year int64, cites int64) graph.OID {
		n := g.NewNode(name)
		g.AddEdge(n, "year", graph.Int(year))
		g.AddEdge(n, "cites", graph.Int(cites))
		g.AddToCollection("Papers", graph.NodeValue(n))
		return n
	}
	p1 := mk("p1", 1997, 10)
	mk("p2", 1997, 4)
	mk("p3", 1998, 6)

	h := newDiffHarness(t, g, nil, `
WHERE Papers(p), p -> "year" -> y, p -> "cites" -> c
CREATE YearPage(y)
LINK YearPage(y) -> "papers" -> COUNT(p),
     YearPage(y) -> "cites" -> SUM(c)`)

	// Shift a paper across groups: one COUNT falls, another rises.
	g.RemoveEdge(p1, "year", graph.Int(1997))
	g.AddEdge(p1, "year", graph.Int(1998))
	h.apply()

	// Empty a group entirely: its page disappears.
	g.RemoveFromCollection("Papers", graph.NodeValue(p1))
	p3, _ := g.NodeByName("p3")
	g.RemoveFromCollection("Papers", graph.NodeValue(p3))
	h.apply()
	if _, ok := h.mat.Output().NodeByName("YearPage(1998)"); ok {
		t.Error("YearPage(1998) survived an empty aggregate group")
	}
}

func TestDifferentialInvalidation(t *testing.T) {
	g := fig2Graph(t)
	h := newDiffHarness(t, g, nil, fig3)

	// A new collection changes the plan space: the materialization
	// must refuse the batch and invalidate itself.
	g.DeclareCollection("Brand-New")
	ops, _ := h.log.Take()
	if _, err := h.mat.Apply(ops); err == nil {
		t.Fatal("Apply accepted a new-collection op")
	}
	if h.mat.Valid() {
		t.Fatal("materialization still valid after new collection")
	}
}
