package struql

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"strudel/internal/graph"
	"strudel/internal/pool"
)

// Options configure evaluation.
type Options struct {
	// Registry supplies external predicates; nil means built-ins only.
	Registry *Registry
	// Output, when non-nil, receives the query's constructions. This
	// supports the paper's extension that lets queries add nodes and
	// arcs to an existing graph so different queries build different
	// parts of the same site. When nil, a fresh graph named by the
	// query's OUTPUT clause is created, sharing the input's OID space.
	Output *graph.Graph
	// MaxBindings bounds the size of the binding relation as a safety
	// valve against runaway active-domain queries. 0 means the default
	// (4,000,000).
	MaxBindings int
	// WherePlanner, when set, evaluates each block's where conjunction
	// in place of the interpreter's built-in greedy strategy. The
	// optimizer package supplies an implementation that plans with the
	// repository's index statistics and executes index-based physical
	// operators ("as in traditional query processing, a query is first
	// translated by the query optimizer into an efficient
	// physical-operation tree", Sec. 2.4). The seed rows carry the
	// bindings of enclosing blocks.
	WherePlanner func(conds []Condition, seed []Binding) ([]Binding, error)
	// PlannerProfiled, when set together with Profiler, replaces
	// WherePlanner with a planner that reports per-step statistics
	// through the rec callback (the optimizer's ProfiledHook). When
	// Profiler is nil it behaves exactly like WherePlanner.
	PlannerProfiled func(conds []Condition, seed []Binding, rec func(StepStat)) ([]Binding, error)
	// Profiler, when set, collects an EXPLAIN plan tree with
	// per-operator runtime statistics during this evaluation. All
	// collected fields except wall times are deterministic at any
	// worker count.
	Profiler *Profiler
	// Provenance, when set, records per constructed node the Skolem
	// function, binding tuples, and consumed source objects and
	// attributes during the construction stage.
	Provenance *Provenance
	// Workers bounds the parallelism of the query stage: sibling blocks
	// bind concurrently, and within one conjunction the outer binding
	// loop is chunked across workers once a condition's input relation
	// reaches ParallelThreshold rows. 0 means runtime.GOMAXPROCS(0); 1
	// evaluates sequentially. The construction stage always runs
	// sequentially in block order, so Skolem OIDs, link order and
	// collection order are byte-identical at any worker count.
	Workers int
	// Pool, when set, overrides Workers with a shared (possibly
	// instrumented) worker pool.
	Pool *pool.Pool
	// ParallelThreshold is the minimum number of binding rows before
	// one condition's evaluation is chunked across workers; below it
	// the per-chunk overhead outweighs the win. 0 means the default
	// (256).
	ParallelThreshold int
	// Capture, when set, records each block's deduplicated binding
	// relation as the query stage computes it, so a differential
	// evaluator can be primed from a full run without re-binding.
	Capture *Capture
}

// Capture collects per-block binding relations during evaluation.
// Sibling blocks bind concurrently, so writes are serialized.
type Capture struct {
	mu   sync.Mutex
	envs map[*Block][]env
}

// NewCapture creates an empty capture.
func NewCapture() *Capture { return &Capture{envs: map[*Block][]env{}} }

func (c *Capture) record(b *Block, rows []env) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.envs[b] = rows
	c.mu.Unlock()
}

// Result reports what an evaluation did.
type Result struct {
	Output *graph.Graph
	// Bindings is the total number of binding rows the construction
	// stage processed across all blocks.
	Bindings int
	// NewNodes is the number of Skolem nodes created.
	NewNodes int
}

const defaultMaxBindings = 4_000_000

// defaultParallelThreshold is the row count past which one condition's
// evaluation is chunked across pool workers. Measured on the workload
// benchmarks, the per-chunk cost (a goroutine dispatch plus one copy
// of the bound-variable set) amortizes at a few hundred rows.
const defaultParallelThreshold = 256

// Eval evaluates a query against an input graph. The semantics are the
// paper's two stages: the query stage computes all variable bindings
// satisfying the where conditions (per block, conjoined with ancestor
// blocks); the construction stage creates nodes via memoized Skolem
// functions, adds links, and populates collections.
func Eval(q *Query, input *graph.Graph, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	out := opts.Output
	if out == nil {
		name := q.Output
		if name == "" {
			name = "output"
		}
		out = input.NewSibling(name)
	}
	maxB := opts.MaxBindings
	if maxB == 0 {
		maxB = defaultMaxBindings
	}
	p := opts.Pool
	if p == nil {
		p = pool.New(opts.Workers)
	}
	thresh := opts.ParallelThreshold
	if thresh == 0 {
		thresh = defaultParallelThreshold
	}
	if opts.Profiler != nil {
		opts.Profiler.reset(q)
	}
	ev := &evaluator{
		in:          input,
		out:         out,
		reg:         reg,
		varKinds:    q.Root.Vars(),
		newNodes:    map[graph.OID]bool{},
		nfaCache:    map[*PathExpr]*nfa{},
		maxB:        maxB,
		planner:     opts.WherePlanner,
		plannerProf: opts.PlannerProfiled,
		prof:        opts.Profiler,
		prov:        opts.Provenance,
		pool:        p,
		parThresh:   thresh,
		capture:     opts.Capture,
	}
	// Two stages, as in the paper but restructured for parallelism: the
	// query stage binds every block of the tree (pure reads of the
	// input graph, so sibling blocks run concurrently); the construction
	// stage then replays the tree sequentially in definition order, so
	// Skolem OID allocation and edge insertion order cannot depend on
	// scheduling. One consequence: a query-stage error now surfaces
	// before any construction, instead of after the enclosing blocks'
	// clauses ran.
	bound, err := ev.bindBlock(q.Root, []env{{}})
	if err != nil {
		return nil, err
	}
	if err := ev.constructBlock(bound); err != nil {
		return nil, err
	}
	return &Result{Output: out, Bindings: ev.rows, NewNodes: len(ev.newNodes)}, nil
}

// env is one row of the binding relation: variable name → value. Arc
// variables bind to string atoms carrying the edge label.
type env map[string]graph.Value

func (e env) extend(name string, v graph.Value) env {
	ne := make(env, len(e)+1)
	for k, val := range e {
		ne[k] = val
	}
	ne[name] = v
	return ne
}

type evaluator struct {
	in       *graph.Graph
	out      *graph.Graph
	reg      *Registry
	varKinds map[string]varKind
	newNodes map[graph.OID]bool
	nfaMu    sync.Mutex
	nfaCache map[*PathExpr]*nfa
	rows     int
	maxB     int
	planner  func(conds []Condition, seed []Binding) ([]Binding, error)
	// plannerProf is the profiling-capable planner; it takes precedence
	// over planner when set.
	plannerProf func(conds []Condition, seed []Binding, rec func(StepStat)) ([]Binding, error)
	// prof collects the EXPLAIN plan tree; nil when profiling is off.
	// Each block's PlanNode is written only by the goroutine binding
	// that block, so no locking is needed.
	prof *Profiler
	// prov records construction provenance; nil when off. Recording
	// happens only on the sequential construction stage.
	prov *Provenance
	// pool bounds query-stage parallelism; nil means sequential (the
	// EvalBindings entry point — its callers parallelize across pages
	// instead).
	pool      *pool.Pool
	parThresh int
	// capture, when non-nil, receives each block's deduplicated
	// binding relation for differential priming.
	capture *Capture
}

// boundBlock is one block's computed binding relation, with its
// children's — the output of the query stage, input to the (strictly
// sequential) construction stage.
type boundBlock struct {
	b        *Block
	envs     []env
	children []*boundBlock
}

// bindBlock computes the block's binding relation (extending the
// parent rows) and recurses into children with the extended relation.
// Sibling blocks bind concurrently: the query stage only reads the
// input graph, never the output graph, so block independence holds by
// construction.
func (ev *evaluator) bindBlock(b *Block, parents []env) (*boundBlock, error) {
	pn := ev.prof.nodeFor(b)
	envs, err := ev.applyWhere(b.Where, parents, pn)
	if err != nil {
		return nil, err
	}
	envs = dedupe(envs)
	ev.capture.record(b, envs)
	if pn != nil {
		pn.SeedRows = len(parents)
		pn.Rows = len(envs)
	}
	node := &boundBlock{b: b, envs: envs}
	node.children, err = pool.Map(pool.WithPhase(context.Background(), "bind"), ev.pool, len(b.Children),
		func(_ context.Context, i int) (*boundBlock, error) {
			return ev.bindBlock(b.Children[i], envs)
		})
	if err != nil {
		return nil, err
	}
	return node, nil
}

// constructBlock runs the construction clauses over a bound block tree
// in definition order (pre-order), one row at a time — exactly the
// order the sequential evaluator used, so Skolem OIDs and edge
// insertion order are identical at any worker count.
func (ev *evaluator) constructBlock(n *boundBlock) error {
	acc := map[aggKey]*aggState{}
	for _, e := range n.envs {
		ev.rows++
		if ev.rows > ev.maxB {
			return fmt.Errorf("struql: binding relation exceeded %d rows; the query is probably missing a range restriction", ev.maxB)
		}
		if err := ev.construct(n.b, e, acc); err != nil {
			return err
		}
	}
	if err := ev.flushAggregates(acc); err != nil {
		return err
	}
	for _, ch := range n.children {
		if err := ev.constructBlock(ch); err != nil {
			return err
		}
	}
	return nil
}

// applyWhere extends the rows with all assignments satisfying the
// conditions. Conditions are ordered greedily: fully bound conditions
// act as filters first; generators are picked cheapest-first; when
// only conditions over unbound variables remain (e.g. negation), one
// unbound variable is ranged over the active domain, per the paper's
// active-domain semantics.
func (ev *evaluator) applyWhere(conds []Condition, rows []env, pn *PlanNode) ([]env, error) {
	if len(conds) == 0 {
		return rows, nil
	}
	if ev.plannerProf != nil || ev.planner != nil {
		seed := make([]Binding, len(rows))
		for i, r := range rows {
			seed[i] = Binding(r)
		}
		var planned []Binding
		var err error
		switch {
		case ev.plannerProf != nil:
			var rec func(StepStat)
			if pn != nil {
				rec = func(st StepStat) { pn.Steps = append(pn.Steps, st) }
			}
			planned, err = ev.plannerProf(conds, seed, rec)
		default:
			t0 := time.Now()
			planned, err = ev.planner(conds, seed)
			if pn != nil && err == nil {
				// Opaque planner: the per-step breakdown is unavailable,
				// so record the whole conjunction as one step.
				pn.Steps = append(pn.Steps, StepStat{
					Cond:    condsString(conds),
					Method:  "planner",
					EstRows: -1,
					RowsIn:  len(seed),
					RowsOut: len(planned),
					WallNS:  time.Since(t0).Nanoseconds(),
				})
			}
		}
		if err != nil {
			return nil, err
		}
		out := make([]env, len(planned))
		for i, r := range planned {
			out[i] = env(r)
		}
		if len(out) > ev.maxB {
			return nil, fmt.Errorf("struql: binding relation exceeded %d rows", ev.maxB)
		}
		return out, nil
	}
	remaining := make([]Condition, len(conds))
	copy(remaining, conds)
	bound := map[string]bool{}
	if len(rows) > 0 {
		for v := range rows[0] {
			bound[v] = true
		}
	}
	for len(remaining) > 0 {
		idx, score := ev.pickNext(remaining, bound)
		if score >= scoreNeedsDomain {
			// Active-domain fallback: bind one unbound variable of the
			// chosen condition to every element of the active domain.
			v, kind := firstUnbound(remaining[idx], bound)
			if v == "" {
				return nil, fmt.Errorf("struql: cannot order condition %s", remaining[idx])
			}
			in := len(rows)
			t0 := time.Now()
			domain := ev.activeDomain(kind)
			var next []env
			for _, r := range rows {
				for _, d := range domain {
					next = append(next, r.extend(v, d))
				}
			}
			if len(next) > ev.maxB {
				return nil, fmt.Errorf("struql: active-domain expansion of %q exceeded %d rows", v, ev.maxB)
			}
			rows = next
			bound[v] = true
			if pn != nil {
				pn.Steps = append(pn.Steps, StepStat{
					Cond:    "domain(" + v + ")",
					Method:  "active-domain",
					EstRows: -1,
					RowsIn:  in,
					RowsOut: len(rows),
					WallNS:  time.Since(t0).Nanoseconds(),
				})
			}
			continue
		}
		cond := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		var method string
		if pn != nil {
			method = ev.interpMethod(cond, bound)
		}
		in := len(rows)
		t0 := time.Now()
		var err error
		rows, err = ev.expandRows(cond, rows, bound)
		if err != nil {
			return nil, err
		}
		if pn != nil {
			pn.Steps = append(pn.Steps, StepStat{
				Cond:    cond.String(),
				Method:  method,
				EstRows: -1,
				RowsIn:  in,
				RowsOut: len(rows),
				WallNS:  time.Since(t0).Nanoseconds(),
			})
		}
		if len(rows) > ev.maxB {
			return nil, fmt.Errorf("struql: binding relation exceeded %d rows while evaluating %s", ev.maxB, cond)
		}
	}
	return rows, nil
}

// condsString renders a conjunction for the opaque-planner plan step.
func condsString(conds []Condition) string {
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}

// interpMethod names the interpreter's access strategy for one
// condition given the currently bound variables — the interpreter
// analogue of the optimizer's physical-operator choice, computed
// before expandRows mutates the bound set.
func (ev *evaluator) interpMethod(c Condition, bound map[string]bool) string {
	termBound := func(t Term) bool { return !t.IsVar() || bound[t.Var] }
	switch c := c.(type) {
	case *MembershipCond:
		if termBound(c.Arg) {
			return "member-check"
		}
		return "collection-scan"
	case *EdgeCond:
		switch {
		case termBound(c.From):
			return "edge-out"
		case termBound(c.To):
			return "edge-in"
		default:
			return "edge-scan"
		}
	case *PathCond:
		return "path-nfa"
	case *CompareCond:
		if termBound(c.Left) && termBound(c.Right) {
			return "filter"
		}
		return "assign"
	case *InSetCond:
		if bound[c.Var] {
			return "filter:in"
		}
		return "set-expand"
	case *PredCond:
		return "predicate"
	case *NotCond:
		return "anti-join"
	default:
		return "generic"
	}
}

const scoreNeedsDomain = 1000

// pickNext returns the index of the cheapest evaluable condition and
// its score.
func (ev *evaluator) pickNext(conds []Condition, bound map[string]bool) (int, int) {
	best, bestScore := 0, 1<<30
	for i, c := range conds {
		s := ev.score(c, bound)
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	return best, bestScore
}

func (ev *evaluator) score(c Condition, bound map[string]bool) int {
	termBound := func(t Term) bool { return !t.IsVar() || bound[t.Var] }
	switch c := c.(type) {
	case *MembershipCond:
		if termBound(c.Arg) {
			return 0
		}
		if ev.in.HasCollection(c.Collection) {
			return 10
		}
		return scoreNeedsDomain + 500 // predicate needing a bound arg
	case *EdgeCond:
		fb, tb := termBound(c.From), termBound(c.To)
		lb := c.Label.Var == "" || bound[c.Label.Var]
		switch {
		case fb && tb && lb:
			return 0
		case fb:
			return 20
		case tb:
			return 40
		default:
			return 60
		}
	case *PathCond:
		fb, tb := termBound(c.From), termBound(c.To)
		switch {
		case fb && tb:
			return 5
		case fb:
			return 25
		case tb:
			return 45
		default:
			return 65
		}
	case *CompareCond:
		lb, rb := termBound(c.Left), termBound(c.Right)
		switch {
		case lb && rb:
			return 0
		case c.Op == OpEq && (lb || rb):
			return 15
		default:
			return scoreNeedsDomain + 200
		}
	case *InSetCond:
		if bound[c.Var] {
			return 0
		}
		return 12
	case *PredCond:
		for _, a := range c.Args {
			if !termBound(a) {
				return scoreNeedsDomain + 300
			}
		}
		return 1
	case *NotCond:
		vm := map[string]varKind{}
		c.vars(vm)
		for v := range vm {
			if !bound[v] {
				return scoreNeedsDomain + 1000
			}
		}
		return 2
	default:
		return scoreNeedsDomain + 2000
	}
}

// firstUnbound returns one unbound variable of c and its kind.
func firstUnbound(c Condition, bound map[string]bool) (string, varKind) {
	vm := map[string]varKind{}
	c.vars(vm)
	names := make([]string, 0, len(vm))
	for v := range vm {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		if !bound[v] {
			return v, vm[v]
		}
	}
	return "", nodeVar
}

// activeDomain enumerates the active domain: all nodes plus all atoms
// appearing as edge targets or collection members for node variables;
// all labels for arc variables.
func (ev *evaluator) activeDomain(kind varKind) []graph.Value {
	if kind == arcVar {
		labels := ev.in.Labels()
		out := make([]graph.Value, len(labels))
		for i, l := range labels {
			out[i] = graph.Str(l)
		}
		return out
	}
	var out []graph.Value
	seen := map[graph.Value]struct{}{}
	add := func(v graph.Value) {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, id := range ev.in.Nodes() {
		add(graph.NodeValue(id))
	}
	ev.in.Edges(func(e graph.Edge) bool {
		if !e.To.IsNode() {
			add(e.To)
		}
		return true
	})
	for _, c := range ev.in.Collections() {
		for _, m := range ev.in.Collection(c) {
			add(m)
		}
	}
	return out
}

// resolve returns the value of a term under an environment.
func resolve(t Term, e env) (graph.Value, bool) {
	if !t.IsVar() {
		return t.Const, true
	}
	v, ok := e[t.Var]
	return v, ok
}

// expandRows applies one condition to the full relation. Past the
// parallel threshold the outer binding loop is chunked across pool
// workers: every expand* evaluator processes rows independently and in
// order, so the concatenation of the chunk outputs equals the
// sequential output row for row. Each chunk works on a copy of the
// bound-variable set; the canonical update of bound is replayed once
// afterwards with an empty relation (the updates depend only on the
// condition and the bound set, never on the rows).
func (ev *evaluator) expandRows(c Condition, rows []env, bound map[string]bool) ([]env, error) {
	w := 1
	if ev.pool != nil {
		w = ev.pool.Workers()
	}
	if w <= 1 || len(rows) < ev.parThresh {
		return ev.expand(c, rows, bound)
	}
	chunk := (len(rows) + w - 1) / w
	var chunks [][]env
	for start := 0; start < len(rows); start += chunk {
		end := min(start+chunk, len(rows))
		chunks = append(chunks, rows[start:end])
	}
	parts, err := pool.Map(pool.WithPhase(context.Background(), "bind"), ev.pool, len(chunks),
		func(_ context.Context, i int) ([]env, error) {
			return ev.expand(c, chunks[i], copyBound(bound))
		})
	if err != nil {
		return nil, err
	}
	out := make([]env, 0, len(rows))
	for _, p := range parts {
		out = append(out, p...)
	}
	if _, err := ev.expand(c, nil, bound); err != nil {
		return nil, err
	}
	if _, ok := c.(*PathCond); ok {
		// expandPath dedupes its output; per-chunk dedupe can leave
		// cross-chunk duplicates, so dedupe the concatenation (same
		// first-occurrence order as the sequential pass).
		out = dedupe(out)
	}
	return out, nil
}

// expand applies one condition to every row, producing the extended
// relation. bound is updated with newly bound variables.
func (ev *evaluator) expand(c Condition, rows []env, bound map[string]bool) ([]env, error) {
	switch c := c.(type) {
	case *MembershipCond:
		return ev.expandMembership(c, rows, bound)
	case *EdgeCond:
		return ev.expandEdge(c, rows, bound)
	case *PathCond:
		return ev.expandPath(c, rows, bound)
	case *CompareCond:
		return ev.expandCompare(c, rows, bound)
	case *InSetCond:
		return ev.expandInSet(c, rows, bound)
	case *PredCond:
		return ev.expandPred(c, rows)
	case *NotCond:
		return ev.expandNot(c, rows, bound)
	default:
		return nil, fmt.Errorf("struql: unsupported condition %T", c)
	}
}

func (ev *evaluator) expandMembership(c *MembershipCond, rows []env, bound map[string]bool) ([]env, error) {
	isColl := ev.in.HasCollection(c.Collection)
	if !isColl {
		// Semantic-level resolution: not a collection, so it must be
		// an external predicate (paper Sec. 3).
		if fn, ok := ev.reg.objectPred(c.Collection); ok {
			var out []env
			for _, r := range rows {
				v, ok := resolve(c.Arg, r)
				if !ok {
					return nil, fmt.Errorf("struql: predicate %s applied to unbound variable", c)
				}
				if fn(v) {
					out = append(out, r)
				}
			}
			return out, nil
		}
		return nil, fmt.Errorf("struql: %q is neither a collection of graph %q nor a registered predicate", c.Collection, ev.in.Name())
	}
	if !c.Arg.IsVar() || bound[c.Arg.Var] {
		var out []env
		for _, r := range rows {
			v, _ := resolve(c.Arg, r)
			if ev.in.InCollection(c.Collection, v) {
				out = append(out, r)
			}
		}
		return out, nil
	}
	members := ev.in.Collection(c.Collection)
	var out []env
	for _, r := range rows {
		for _, m := range members {
			out = append(out, r.extend(c.Arg.Var, m))
		}
	}
	bound[c.Arg.Var] = true
	return out, nil
}

func (ev *evaluator) expandEdge(c *EdgeCond, rows []env, bound map[string]bool) ([]env, error) {
	fromBound := !c.From.IsVar() || bound[c.From.Var]
	toBound := !c.To.IsVar() || bound[c.To.Var]
	labelBound := c.Label.Var == "" || bound[c.Label.Var]

	labelOK := func(r env, l string) bool {
		switch {
		case c.Label.Any:
			return true
		case c.Label.Var != "":
			if lv, ok := r[c.Label.Var]; ok {
				s, _ := lv.AsString()
				return s == l
			}
			return true // unbound: will bind
		default:
			return c.Label.Lit == l
		}
	}
	bindRow := func(r env, e graph.Edge) env {
		nr := r
		if c.From.IsVar() && !fromBound {
			nr = nr.extend(c.From.Var, graph.NodeValue(e.From))
		}
		if c.Label.Var != "" && !labelBound {
			nr = nr.extend(c.Label.Var, graph.Str(e.Label))
		}
		if c.To.IsVar() && !toBound {
			nr = nr.extend(c.To.Var, e.To)
		}
		return nr
	}
	toMatches := func(r env, to graph.Value) bool {
		if !toBound {
			return true
		}
		v, _ := resolve(c.To, r)
		return v == to
	}

	var out []env
	switch {
	case fromBound:
		for _, r := range rows {
			fv, _ := resolve(c.From, r)
			if !fv.IsNode() {
				continue
			}
			ev.in.EachOut(fv.OID(), func(e graph.Edge) bool {
				if labelOK(r, e.Label) && toMatches(r, e.To) {
					out = append(out, bindRow(r, e))
				}
				return true
			})
		}
	case toBound:
		for _, r := range rows {
			tv, _ := resolve(c.To, r)
			if tv.IsNode() {
				for _, e := range ev.in.In(tv.OID()) {
					if labelOK(r, e.Label) {
						out = append(out, bindRow(r, e))
					}
				}
			} else {
				// Atom target: no reverse index in the graph itself;
				// scan (the repository's value index accelerates this
				// at the optimizer level).
				ev.in.Edges(func(e graph.Edge) bool {
					if e.To == tv && labelOK(r, e.Label) {
						out = append(out, bindRow(r, e))
					}
					return true
				})
			}
		}
	default:
		// Neither endpoint bound: scan all edges per row.
		for _, r := range rows {
			ev.in.Edges(func(e graph.Edge) bool {
				if labelOK(r, e.Label) {
					out = append(out, bindRow(r, e))
				}
				return true
			})
		}
	}
	if c.From.IsVar() {
		bound[c.From.Var] = true
	}
	if c.To.IsVar() {
		bound[c.To.Var] = true
	}
	if c.Label.Var != "" {
		bound[c.Label.Var] = true
	}
	return out, nil
}

// pathNFA compiles (or returns the memoized automaton for) a path
// expression. The cache is shared by concurrently binding blocks and
// by chunk workers, so access is serialized; compilation is cheap
// relative to path traversal.
func (ev *evaluator) pathNFA(p *PathExpr) (*nfa, error) {
	ev.nfaMu.Lock()
	defer ev.nfaMu.Unlock()
	if n, ok := ev.nfaCache[p]; ok {
		return n, nil
	}
	n, err := compilePath(p, ev.reg)
	if err != nil {
		return nil, err
	}
	ev.nfaCache[p] = n
	return n, nil
}

func (ev *evaluator) expandPath(c *PathCond, rows []env, bound map[string]bool) ([]env, error) {
	n, err := ev.pathNFA(c.Path)
	if err != nil {
		return nil, err
	}
	fromBound := !c.From.IsVar() || bound[c.From.Var]
	toBound := !c.To.IsVar() || bound[c.To.Var]

	sources := func(r env) []graph.Value {
		if fromBound {
			v, _ := resolve(c.From, r)
			return []graph.Value{v}
		}
		// Unbound source: every node is a candidate; atoms only reach
		// themselves via the empty path.
		var src []graph.Value
		for _, id := range ev.in.Nodes() {
			src = append(src, graph.NodeValue(id))
		}
		if n.acceptsEmpty() {
			src = append(src, ev.atomDomain()...)
		}
		return src
	}

	var out []env
	for _, r := range rows {
		for _, s := range sources(r) {
			targets := n.reach(ev.in, s)
			for _, t := range targets {
				nr := r
				if c.From.IsVar() && !fromBound {
					nr = nr.extend(c.From.Var, s)
				}
				if toBound {
					want, _ := resolve(c.To, nr)
					if t != want {
						continue
					}
				} else {
					nr = nr.extend(c.To.Var, t)
				}
				out = append(out, nr)
			}
		}
	}
	if c.From.IsVar() {
		bound[c.From.Var] = true
	}
	if c.To.IsVar() {
		bound[c.To.Var] = true
	}
	return dedupe(out), nil
}

// atomDomain enumerates the atoms of the active domain.
func (ev *evaluator) atomDomain() []graph.Value {
	var out []graph.Value
	seen := map[graph.Value]struct{}{}
	ev.in.Edges(func(e graph.Edge) bool {
		if !e.To.IsNode() {
			if _, ok := seen[e.To]; !ok {
				seen[e.To] = struct{}{}
				out = append(out, e.To)
			}
		}
		return true
	})
	return out
}

func (ev *evaluator) expandCompare(c *CompareCond, rows []env, bound map[string]bool) ([]env, error) {
	lb := !c.Left.IsVar() || bound[c.Left.Var]
	rb := !c.Right.IsVar() || bound[c.Right.Var]
	var out []env
	switch {
	case lb && rb:
		for _, r := range rows {
			lv, _ := resolve(c.Left, r)
			rv, _ := resolve(c.Right, r)
			if compareOK(lv, rv, c.Op) {
				out = append(out, r)
			}
		}
	case c.Op == OpEq && lb:
		for _, r := range rows {
			lv, _ := resolve(c.Left, r)
			out = append(out, r.extend(c.Right.Var, lv))
		}
		bound[c.Right.Var] = true
	case c.Op == OpEq && rb:
		for _, r := range rows {
			rv, _ := resolve(c.Right, r)
			out = append(out, r.extend(c.Left.Var, rv))
		}
		bound[c.Left.Var] = true
	default:
		return nil, fmt.Errorf("struql: comparison %s over unbound variables", c)
	}
	return out, nil
}

func compareOK(a, b graph.Value, op CompareOp) bool {
	cmp, ok := graph.Compare(a, b)
	if !ok {
		// Incomparable values are unequal and satisfy no ordering.
		return op == OpNeq
	}
	switch op {
	case OpEq:
		return cmp == 0
	case OpNeq:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

func (ev *evaluator) expandInSet(c *InSetCond, rows []env, bound map[string]bool) ([]env, error) {
	var out []env
	if bound[c.Var] {
		for _, r := range rows {
			s, _ := r[c.Var].AsString()
			for _, m := range c.Set {
				if m == s {
					out = append(out, r)
					break
				}
			}
		}
		return out, nil
	}
	for _, r := range rows {
		for _, m := range c.Set {
			out = append(out, r.extend(c.Var, graph.Str(m)))
		}
	}
	bound[c.Var] = true
	return out, nil
}

func (ev *evaluator) expandPred(c *PredCond, rows []env) ([]env, error) {
	fn, ok := ev.reg.multiPred(c.Name)
	if !ok {
		if len(c.Args) == 1 {
			if ufn, uok := ev.reg.objectPred(c.Name); uok {
				fn = func(vs []graph.Value) bool { return ufn(vs[0]) }
				ok = true
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("struql: unknown predicate %q", c.Name)
	}
	var out []env
	for _, r := range rows {
		vals := make([]graph.Value, len(c.Args))
		for i, a := range c.Args {
			v, bok := resolve(a, r)
			if !bok {
				return nil, fmt.Errorf("struql: predicate %s applied to unbound variable %q", c, a.Var)
			}
			vals[i] = v
		}
		if fn(vals) {
			out = append(out, r)
		}
	}
	return out, nil
}

func (ev *evaluator) expandNot(c *NotCond, rows []env, bound map[string]bool) ([]env, error) {
	var out []env
	for _, r := range rows {
		inner, err := ev.expand(c.Inner, []env{r}, copyBound(bound))
		if err != nil {
			return nil, err
		}
		if len(inner) == 0 {
			out = append(out, r)
		}
	}
	return out, nil
}

func copyBound(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// dedupe removes duplicate rows; the binding relation is a set.
func dedupe(rows []env) []env {
	if len(rows) < 2 {
		return rows
	}
	seen := make(map[string]struct{}, len(rows))
	out := make([]env, 0, len(rows))
	for _, r := range rows {
		k := rowKey(r)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

func rowKey(r env) string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(r[n].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// aggKey groups aggregate accumulation by link clause, resolved
// source node and label.
type aggKey struct {
	link  *Link
	from  graph.OID
	label string
}

// aggState accumulates the distinct values of the aggregated variable
// within one group. ord is the group's creation rank within its block,
// so flushAggregates emits edges in a deterministic order (the row
// loop that creates groups is itself deterministic).
type aggState struct {
	op   AggOp
	seen map[graph.Value]struct{}
	vals []graph.Value
	ord  int
}

// construct runs the block's create, link and collect clauses for one
// binding row. Links whose target is an aggregate accumulate into acc
// and are emitted by flushAggregates after all rows.
func (ev *evaluator) construct(b *Block, r env, acc map[aggKey]*aggState) error {
	for _, ct := range b.Creates {
		id, err := ev.skolemNode(ct, r)
		if err != nil {
			return err
		}
		ev.recordProv(b, id, r)
	}
	for li := range b.Links {
		l := b.Links[li]
		from, err := ev.resolveTarget(l.From, r)
		if err != nil {
			return err
		}
		if !from.IsNode() || !ev.newNodes[from.OID()] {
			return fmt.Errorf("struql: link %s adds an edge from existing object %s; existing nodes are immutable", l, from)
		}
		ev.recordProv(b, from.OID(), r)
		var label string
		switch {
		case l.Label.Var != "":
			lv, ok := r[l.Label.Var]
			if !ok {
				return fmt.Errorf("struql: link %s: arc variable %q unbound", l, l.Label.Var)
			}
			label, _ = lv.AsString()
		default:
			label = l.Label.Lit
		}
		if l.To.Agg != nil {
			v, ok := r[l.To.Agg.Var]
			if !ok {
				return fmt.Errorf("struql: aggregate %s: variable %q unbound", l.To.Agg, l.To.Agg.Var)
			}
			k := aggKey{link: &b.Links[li], from: from.OID(), label: label}
			st, ok2 := acc[k]
			if !ok2 {
				st = &aggState{op: l.To.Agg.Op, seen: map[graph.Value]struct{}{}, ord: len(acc)}
				acc[k] = st
			}
			if _, dup := st.seen[v]; !dup {
				st.seen[v] = struct{}{}
				st.vals = append(st.vals, v)
			}
			continue
		}
		to, err := ev.resolveTarget(l.To, r)
		if err != nil {
			return err
		}
		if to.IsNode() && ev.newNodes[to.OID()] {
			ev.recordProv(b, to.OID(), r)
		}
		if err := ev.out.AddEdge(from.OID(), label, to); err != nil {
			return err
		}
	}
	for _, c := range b.Collects {
		v, err := ev.resolveTarget(c.Target, r)
		if err != nil {
			return err
		}
		if v.IsNode() && ev.newNodes[v.OID()] {
			ev.recordProv(b, v.OID(), r)
		}
		ev.out.AddToCollection(c.Collection, v)
	}
	return nil
}

// recordProv forwards one construction touch to the provenance
// recorder; a no-op when provenance is off. Called only from the
// sequential construction stage.
func (ev *evaluator) recordProv(b *Block, id graph.OID, r env) {
	if ev.prov != nil {
		ev.prov.record(ev, b, id, r)
	}
}

// flushAggregates emits one edge per aggregate group, in group
// creation order — never map iteration order, which would let two
// aggregate edges on the same node land in different positions from
// one build to the next.
func (ev *evaluator) flushAggregates(acc map[aggKey]*aggState) error {
	type entry struct {
		k  aggKey
		st *aggState
	}
	entries := make([]entry, 0, len(acc))
	for k, st := range acc {
		entries = append(entries, entry{k, st})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].st.ord < entries[j].st.ord })
	for _, e := range entries {
		v, err := Aggregate(e.st.op, e.st.vals)
		if err != nil {
			return err
		}
		if err := ev.out.AddEdge(e.k.from, e.k.label, v); err != nil {
			return err
		}
	}
	return nil
}

// Aggregate computes one aggregate over a group's distinct values.
// Exported for the incremental evaluator, which groups per page.
func Aggregate(op AggOp, vals []graph.Value) (graph.Value, error) {
	switch op {
	case AggCount:
		return graph.Int(int64(len(vals))), nil
	case AggMin, AggMax:
		if len(vals) == 0 {
			return graph.Value{}, fmt.Errorf("struql: %s over empty group", op)
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp, ok := graph.Compare(v, best)
			if !ok {
				cmp = 1
				if graph.Less(v, best) {
					cmp = -1
				}
			}
			if (op == AggMin && cmp < 0) || (op == AggMax && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default: // SUM, AVG
		var sum float64
		allInt := true
		for _, v := range vals {
			switch v.Kind() {
			case graph.KindInt:
				n, _ := v.AsInt()
				sum += float64(n)
			case graph.KindFloat:
				f, _ := v.AsFloat()
				sum += f
				allInt = false
			default:
				return graph.Value{}, fmt.Errorf("struql: %s over non-numeric value %s", op, v)
			}
		}
		if op == AggAvg {
			if len(vals) == 0 {
				return graph.Value{}, fmt.Errorf("struql: AVG over empty group")
			}
			return graph.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return graph.Int(int64(sum)), nil
		}
		return graph.Float(sum), nil
	}
}

// skolemNode returns the node for a Skolem application, creating it on
// first use. By definition a Skolem function applied to the same
// inputs produces the same node OID; the output graph's symbolic node
// names serve as the memo table, which also makes Skolem identities
// stable across queries composed into the same output graph.
func (ev *evaluator) skolemNode(t SkolemTerm, r env) (graph.OID, error) {
	args := make([]string, len(t.Args))
	for i, a := range t.Args {
		v, ok := resolve(a, r)
		if !ok {
			return 0, fmt.Errorf("struql: %s: variable %q unbound", t, a.Var)
		}
		args[i] = skolemArgKey(ev.in, v)
	}
	key := t.Func + "(" + strings.Join(args, ",") + ")"
	if id, ok := ev.out.NodeByName(key); ok {
		ev.newNodes[id] = true
		return id, nil
	}
	id := ev.out.NewNode(key)
	ev.newNodes[id] = true
	return id, nil
}

// skolemArgKey renders a Skolem argument. Node arguments use their
// symbolic name when available so site-graph node names read like the
// paper's (e.g. PaperPresentation(pub1)).
func skolemArgKey(g *graph.Graph, v graph.Value) string {
	if v.IsNode() {
		if n := g.NodeName(v.OID()); n != "" {
			return n
		}
	}
	return v.String()
}

func (ev *evaluator) resolveTarget(t LinkTarget, r env) (graph.Value, error) {
	if t.Skolem != nil {
		id, err := ev.skolemNode(*t.Skolem, r)
		if err != nil {
			return graph.Value{}, err
		}
		return graph.NodeValue(id), nil
	}
	v, ok := resolve(*t.Term, r)
	if !ok {
		return graph.Value{}, fmt.Errorf("struql: variable %q unbound in construction clause", t.Term.Var)
	}
	return v, nil
}
