package struql

import (
	"strings"
	"testing"

	"strudel/internal/datadef"
	"strudel/internal/graph"
)

const fig2Data = `
collection Publications {
    abstract text
    postscript ps
}
object pub1 in Publications {
    title "Specifying Representations..."
    author "Norman Ramsey"
    author "Mary Fernandez"
    year 1997
    month "May"
    journal "Transactions on Programming..."
    pub-type "article"
    abstract "abstracts/toplas97.txt"
    postscript "papers/toplas97.ps.gz"
    category "Architecture Specifications"
    category "Programming Languages"
}
object pub2 in Publications {
    title "Optimizing Regular..."
    author "Mary Fernandez"
    author "Dan Suciu"
    year 1998
    booktitle "Proc. of ICDE"
    pub-type "inproceedings"
    abstract "abstracts/icde98.txt"
    postscript "papers/icde98.ps.gz"
    category "Semistructured Data"
    category "Programming Languages"
}
`

func fig2Graph(t *testing.T) *graph.Graph {
	t.Helper()
	res, err := datadef.Parse("BIBTEX", fig2Data)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func mustEval(t *testing.T, q *Query, in *graph.Graph, opts *Options) *Result {
	t.Helper()
	res, err := Eval(q, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEvalCollectSimple(t *testing.T) {
	// The paper's first example: all PostScript papers directly
	// accessible from home pages.
	g := graph.New("g")
	hp := g.NewNode("hp")
	g.AddToCollection("HomePages", graph.NodeValue(hp))
	g.AddEdge(hp, "Paper", graph.File("a.ps", graph.FilePostScript))
	g.AddEdge(hp, "Paper", graph.Str("not-ps"))
	q := MustParse(`WHERE HomePages(p), p -> "Paper" -> q, isPostScript(q) COLLECT PostscriptPages(q)`)
	res := mustEval(t, q, g, nil)
	got := res.Output.Collection("PostscriptPages")
	if len(got) != 1 || got[0].FileType() != graph.FilePostScript {
		t.Errorf("PostscriptPages = %v", got)
	}
}

// TestEvalFig3 evaluates the paper's Fig. 3 site-definition query over
// the Fig. 2 data and verifies the Fig. 4 site-graph fragment.
func TestEvalFig3(t *testing.T) {
	g := fig2Graph(t)
	q := MustParse(fig3)
	res := mustEval(t, q, g, nil)
	site := res.Output
	if site.Name() != "HomePage" {
		t.Errorf("output graph name = %q", site.Name())
	}

	root, ok := site.NodeByName("RootPage()")
	if !ok {
		t.Fatal("RootPage() missing")
	}
	// Root links to AbstractsPage, two YearPages, three CategoryPages.
	if n := len(site.OutLabel(root, "YearPage")); n != 2 {
		t.Errorf("RootPage has %d YearPage links, want 2", n)
	}
	if n := len(site.OutLabel(root, "CategoryPage")); n != 3 {
		t.Errorf("RootPage has %d CategoryPage links, want 3", n)
	}
	if n := len(site.OutLabel(root, "AbstractsPage")); n != 1 {
		t.Errorf("RootPage has %d AbstractsPage links, want 1", n)
	}

	// YearPage(1997) -> "Paper" -> PaperPresentation(pub1).
	yp97, ok := site.NodeByName("YearPage(1997)")
	if !ok {
		t.Fatal("YearPage(1997) missing")
	}
	papers := site.OutLabel(yp97, "Paper")
	if len(papers) != 1 {
		t.Fatalf("YearPage(1997) papers = %v", papers)
	}
	if site.NodeName(papers[0].OID()) != "PaperPresentation(pub1)" {
		t.Errorf("YearPage(1997) paper = %q", site.NodeName(papers[0].OID()))
	}
	if y, _ := site.First(yp97, "Year"); y != graph.Int(1997) {
		t.Errorf("YearPage(1997) Year = %v", y)
	}

	// PaperPresentation copies all attributes of the publication.
	pp1, _ := site.NodeByName("PaperPresentation(pub1)")
	if titles := site.OutLabel(pp1, "title"); len(titles) != 1 {
		t.Errorf("pp1 title = %v", titles)
	}
	if authors := site.OutLabel(pp1, "author"); len(authors) != 2 {
		t.Errorf("pp1 authors = %v", authors)
	}
	// ... and links to its abstract page.
	abs := site.OutLabel(pp1, "Abstract")
	if len(abs) != 1 || site.NodeName(abs[0].OID()) != "AbstractPage(pub1)" {
		t.Errorf("pp1 Abstract = %v", abs)
	}

	// The shared category page links to both presentations.
	cpl, ok := site.NodeByName(`CategoryPage("Programming Languages")`)
	if !ok {
		t.Fatalf("category page missing; nodes: %v", site.Nodes())
	}
	if n := len(site.OutLabel(cpl, "Paper")); n != 2 {
		t.Errorf("Programming Languages category has %d papers, want 2", n)
	}

	// AbstractsPage links to every abstract page.
	ap, _ := site.NodeByName("AbstractsPage()")
	if n := len(site.OutLabel(ap, "Abstract")); n != 2 {
		t.Errorf("AbstractsPage has %d Abstract links, want 2", n)
	}
}

func TestEvalSkolemDeterminism(t *testing.T) {
	g := fig2Graph(t)
	q := MustParse(fig3)
	r1 := mustEval(t, q, g, nil)
	r2 := mustEval(t, q, g, nil)
	if r1.Output.DumpString() != r2.Output.DumpString() {
		t.Error("evaluation is not deterministic")
	}
	if r1.NewNodes == 0 || r1.Bindings == 0 {
		t.Errorf("result stats empty: %+v", r1)
	}
}

// TestEvalTextOnly runs the paper's TextOnly transformation: copy the
// part of the graph reachable from the root, dropping image targets.
func TestEvalTextOnly(t *testing.T) {
	g := graph.New("site")
	root := g.NewNode("root")
	art := g.NewNode("article")
	g.AddToCollection("Root", graph.NodeValue(root))
	g.AddEdge(root, "story", graph.NodeValue(art))
	g.AddEdge(art, "text", graph.Str("body"))
	g.AddEdge(art, "photo", graph.File("p.gif", graph.FileImage))
	q := MustParse(`
WHERE Root(p), p -> * -> q, q -> l -> q2, not(isImageFile(q2))
CREATE New(p), New(q), New(q2)
LINK New(q) -> l -> New(q2)
COLLECT TextOnlyRoot(New(p))
OUTPUT TextOnly`)
	res := mustEval(t, q, g, nil)
	out := res.Output
	if len(out.Collection("TextOnlyRoot")) != 1 {
		t.Fatalf("TextOnlyRoot = %v", out.Collection("TextOnlyRoot"))
	}
	nr, _ := out.NodeByName("New(root)")
	na := out.OutLabel(nr, "story")
	if len(na) != 1 {
		t.Fatalf("copied root edges = %v", out.Out(nr))
	}
	// The article copy keeps text but not the image.
	if txt := out.OutLabel(na[0].OID(), "text"); len(txt) != 1 {
		t.Errorf("text edge missing: %v", out.Out(na[0].OID()))
	}
	if img := out.OutLabel(na[0].OID(), "photo"); len(img) != 0 {
		t.Errorf("image edge should be dropped: %v", img)
	}
}

// TestEvalComplement exercises the active-domain semantics with the
// paper's complement-graph query.
func TestEvalComplement(t *testing.T) {
	g := graph.New("g")
	a, b := g.NewNode("a"), g.NewNode("b")
	g.AddEdge(a, "x", graph.NodeValue(b))
	q := MustParse(`
WHERE not(p -> l -> q)
CREATE F(p), F(q)
LINK F(p) -> l -> F(q)`)
	res := mustEval(t, q, g, nil)
	out := res.Output
	// Active domain: nodes {a,b}, labels {x}. Complement of {(a,x,b)}
	// has 3 edges.
	if out.NumEdges() != 3 {
		t.Fatalf("complement has %d edges, want 3:\n%s", out.NumEdges(), out.DumpString())
	}
	fa, _ := out.NodeByName("F(a)")
	fb, _ := out.NodeByName("F(b)")
	if vs := out.OutLabel(fa, "x"); len(vs) != 1 || vs[0] != graph.NodeValue(fa) {
		t.Errorf("F(a) -x-> = %v, want self only", vs)
	}
	if vs := out.OutLabel(fb, "x"); len(vs) != 2 {
		t.Errorf("F(b) -x-> = %v, want both", vs)
	}
}

func TestEvalInSetAndArcVariableCarryOver(t *testing.T) {
	// Arc variables carry irregular labels into the site graph.
	g := graph.New("g")
	p := g.NewNode("p")
	g.AddToCollection("Pubs", graph.NodeValue(p))
	g.AddEdge(p, "Paper", graph.Str("t1"))
	g.AddEdge(p, "TechReport", graph.Str("t2"))
	g.AddEdge(p, "Secret", graph.Str("t3"))
	q := MustParse(`
WHERE Pubs(x), x -> l -> v, l in {"Paper", "TechReport"}
CREATE Page(x)
LINK Page(x) -> l -> v`)
	res := mustEval(t, q, g, nil)
	pg, _ := res.Output.NodeByName("Page(p)")
	out := res.Output.Out(pg)
	if len(out) != 2 {
		t.Fatalf("copied edges = %v", out)
	}
	for _, e := range out {
		if e.Label != "Paper" && e.Label != "TechReport" {
			t.Errorf("unexpected label %q", e.Label)
		}
	}
}

func TestEvalComparisonsFilterAndBind(t *testing.T) {
	g := fig2Graph(t)
	q := MustParse(`
WHERE Publications(x), x -> "year" -> y, y >= 1998
COLLECT Recent(x)`)
	res := mustEval(t, q, g, nil)
	recent := res.Output.Collection("Recent")
	if len(recent) != 1 {
		t.Fatalf("Recent = %v", recent)
	}
	if g.NodeName(recent[0].OID()) != "pub2" {
		t.Errorf("Recent member = %q", g.NodeName(recent[0].OID()))
	}
	// Equality binding: z = x propagates the binding.
	q2 := MustParse(`WHERE Publications(x), z = x COLLECT Copy(z)`)
	res2 := mustEval(t, q2, g, nil)
	if len(res2.Output.Collection("Copy")) != 2 {
		t.Errorf("Copy = %v", res2.Output.Collection("Copy"))
	}
}

func TestEvalIntoExistingOutput(t *testing.T) {
	// The paper's extension: multiple queries build parts of the same
	// site graph, and Skolem identities are stable across them.
	g := fig2Graph(t)
	site := g.NewSibling("Site")
	q1 := MustParse(`WHERE Publications(x) CREATE Page(x) COLLECT Pages(Page(x))`)
	q2 := MustParse(`
CREATE Nav()
WHERE Publications(x)
CREATE Page(x)
LINK Nav() -> "entry" -> Page(x)`)
	mustEval(t, q1, g, &Options{Output: site})
	mustEval(t, q2, g, &Options{Output: site})
	if len(site.Collection("Pages")) != 2 {
		t.Fatalf("Pages = %v", site.Collection("Pages"))
	}
	nav, _ := site.NodeByName("Nav()")
	entries := site.OutLabel(nav, "entry")
	if len(entries) != 2 {
		t.Fatalf("entries = %v", entries)
	}
	// Q2's Page(x) must be the same nodes Q1 created.
	for _, e := range entries {
		if !site.InCollection("Pages", e) {
			t.Errorf("entry %v is not the Q1 page", e)
		}
	}
}

func TestEvalSharedOIDsWithInput(t *testing.T) {
	// Site-graph nodes can link to data-graph objects; the graphs
	// share an OID space.
	g := fig2Graph(t)
	q := MustParse(`WHERE Publications(x) CREATE P(x) LINK P(x) -> "orig" -> x`)
	res := mustEval(t, q, g, nil)
	p1, _ := res.Output.NodeByName("P(pub1)")
	orig, _ := res.Output.First(p1, "orig")
	if g.NodeName(orig.OID()) != "pub1" {
		t.Errorf("orig = %v", orig)
	}
}

func TestEvalUnknownCollectionOrPredicate(t *testing.T) {
	g := graph.New("g")
	q := MustParse(`WHERE NoSuch(x) COLLECT C(x)`)
	_, err := Eval(q, g, nil)
	if err == nil || !strings.Contains(err.Error(), "neither a collection") {
		t.Errorf("err = %v", err)
	}
}

func TestEvalCustomPredicates(t *testing.T) {
	g := fig2Graph(t)
	reg := NewRegistry()
	reg.RegisterObject("isLongTitle", func(v graph.Value) bool {
		s, ok := v.AsString()
		return ok && len(s) > 25
	})
	reg.RegisterMulti("sameYear", func(vs []graph.Value) bool {
		return len(vs) == 2 && graph.Eq(vs[0], vs[1])
	})
	q := MustParse(`
WHERE Publications(x), x -> "title" -> t, isLongTitle(t),
      x -> "year" -> y, sameYear(y, y)
COLLECT Long(x)`)
	res := mustEval(t, q, g, &Options{Registry: reg})
	if len(res.Output.Collection("Long")) != 1 {
		t.Errorf("Long = %v", res.Output.Collection("Long"))
	}
}

func TestEvalMaxBindingsGuard(t *testing.T) {
	g := graph.New("g")
	for i := 0; i < 20; i++ {
		n := g.NewNode("")
		g.AddToCollection("C", graph.NodeValue(n))
	}
	q := MustParse(`WHERE C(a), C(b), C(c) COLLECT Out(a)`)
	_, err := Eval(q, g, &Options{MaxBindings: 100})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("err = %v", err)
	}
}

func TestEvalEmptyWhereRunsOnce(t *testing.T) {
	g := graph.New("g")
	q := MustParse(`CREATE Root() COLLECT Roots(Root())`)
	res := mustEval(t, q, g, nil)
	if res.Bindings != 1 {
		t.Errorf("bindings = %d, want 1", res.Bindings)
	}
	if len(res.Output.Collection("Roots")) != 1 {
		t.Errorf("Roots = %v", res.Output.Collection("Roots"))
	}
}

func TestEvalNestedConjunction(t *testing.T) {
	// A child block with zero matches must not affect its parent or
	// siblings.
	g := fig2Graph(t)
	q := MustParse(`
WHERE Publications(x)
CREATE Page(x)
{ WHERE x -> "nosuchattr" -> v CREATE Extra(v) LINK Page(x) -> "extra" -> Extra(v) }
{ WHERE x -> "year" -> y CREATE Y(y) LINK Page(x) -> "year" -> Y(y) }
`)
	res := mustEval(t, q, g, nil)
	out := res.Output
	p1, ok := out.NodeByName("Page(pub1)")
	if !ok {
		t.Fatal("Page(pub1) missing")
	}
	if len(out.OutLabel(p1, "extra")) != 0 {
		t.Error("empty child produced edges")
	}
	if len(out.OutLabel(p1, "year")) != 1 {
		t.Error("sibling child should still run")
	}
}

func TestEvalEdgeToBoundAtom(t *testing.T) {
	// Reverse lookup with a bound atomic target scans edges.
	g := fig2Graph(t)
	q := MustParse(`WHERE x -> "year" -> 1997 COLLECT From97(x)`)
	res := mustEval(t, q, g, nil)
	members := res.Output.Collection("From97")
	if len(members) != 1 || g.NodeName(members[0].OID()) != "pub1" {
		t.Errorf("From97 = %v", members)
	}
}

func TestEvalEdgeToBoundNode(t *testing.T) {
	g := graph.New("g")
	a, b := g.NewNode("a"), g.NewNode("b")
	c := g.NewNode("c")
	g.AddEdge(a, "to", graph.NodeValue(c))
	g.AddEdge(b, "to", graph.NodeValue(c))
	g.AddToCollection("Targets", graph.NodeValue(c))
	q := MustParse(`WHERE Targets(y), x -> "to" -> y COLLECT Sources(x)`)
	res := mustEval(t, q, g, nil)
	if len(res.Output.Collection("Sources")) != 2 {
		t.Errorf("Sources = %v", res.Output.Collection("Sources"))
	}
}

func TestEvalPathToBoundTarget(t *testing.T) {
	g, n := chainGraph()
	g.AddToCollection("Start", graph.NodeValue(n[0]))
	g.AddToCollection("End", graph.NodeValue(n[3]))
	q := MustParse(`WHERE Start(s), End(e), s -> * -> e COLLECT Connected(s)`)
	res := mustEval(t, q, g, nil)
	if len(res.Output.Collection("Connected")) != 1 {
		t.Errorf("Connected = %v", res.Output.Collection("Connected"))
	}
}

func TestEvalResultIsSetSemantics(t *testing.T) {
	// Two paths to the same binding must not duplicate constructions.
	g := graph.New("g")
	a := g.NewNode("a")
	b := g.NewNode("b")
	c := g.NewNode("c")
	g.AddToCollection("Root", graph.NodeValue(a))
	g.AddEdge(a, "l", graph.NodeValue(b))
	g.AddEdge(a, "r", graph.NodeValue(b))
	g.AddEdge(b, "t", graph.NodeValue(c))
	q := MustParse(`WHERE Root(r), r -> * -> q COLLECT Reach(q)`)
	res := mustEval(t, q, g, nil)
	if got := len(res.Output.Collection("Reach")); got != 3 {
		t.Errorf("Reach has %d members, want 3 (set semantics)", got)
	}
}
