package struql_test

import (
	"fmt"

	"strudel/internal/datadef"
	"strudel/internal/struql"
)

// Example evaluates the paper's first example query: all PostScript
// papers directly accessible from home pages.
func Example() {
	res, err := datadef.Parse("G", `
object hp in HomePages {
    Paper ps("papers/a.ps")
    Paper "plain-text-draft"
}`)
	if err != nil {
		panic(err)
	}
	q := struql.MustParse(`
WHERE HomePages(p), p -> "Paper" -> q, isPostScript(q)
COLLECT PostscriptPages(q)`)
	out, err := struql.Eval(q, res.Graph, nil)
	if err != nil {
		panic(err)
	}
	for _, v := range out.Output.Collection("PostscriptPages") {
		fmt.Println(v)
	}
	// Output:
	// postscript(papers/a.ps)
}

// ExampleEval_construction shows the construction stage: Skolem
// functions create one new page per distinct year.
func ExampleEval_construction() {
	res, _ := datadef.Parse("G", `
object p1 in Publications { year 1997 }
object p2 in Publications { year 1998 }
object p3 in Publications { year 1998 }`)
	q := struql.MustParse(`
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Paper" -> x,
     YearPage(y) -> "papers" -> COUNT(x)`)
	out, _ := struql.Eval(q, res.Graph, nil)
	for _, id := range out.Output.Nodes() {
		// The output graph also holds the linked data objects; report
		// only the new pages.
		if n, ok := out.Output.First(id, "papers"); ok {
			fmt.Printf("%s: %s papers\n", out.Output.NodeName(id), n.Text())
		}
	}
	// Output:
	// YearPage(1997): 1 papers
	// YearPage(1998): 2 papers
}

// ExampleRangeCheck flags domain-dependent variables.
func ExampleRangeCheck() {
	q := struql.MustParse(`
WHERE not(p -> "link" -> q)
CREATE F(p), F(q)
LINK F(p) -> "missing" -> F(q)`)
	for _, w := range struql.RangeCheck(q) {
		fmt.Println(w.Var)
	}
	// Output:
	// p
	// q
}
