// EXPLAIN support: a structured plan tree mirroring the query's block
// tree, with per-operator runtime statistics. The paper's optimizer
// discussion (Sec. 2.4) treats plan choice as invisible machinery;
// this file makes it observable — which physical operator each
// condition compiled to, what the optimizer estimated, and what
// actually flowed through at run time.
//
// Concurrency contract: the Profiler's block→node map is built once
// before evaluation and read-only afterwards; each PlanNode is written
// only by the single goroutine binding its block (applyWhere is
// sequential per block; sibling blocks own distinct nodes), so the
// parallel evaluator needs no locking here. Everything except WallNS
// is deterministic at any worker count.
package struql

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// StepStat is one executed plan step: the condition, the physical
// operator chosen for it, the index it used (if any), and its
// estimated vs actual row counts. EstRows < 0 means no estimate (the
// interpreter path does not estimate cardinalities).
type StepStat struct {
	Cond    string  `json:"cond"`
	Method  string  `json:"method"`
	Index   string  `json:"index,omitempty"`
	EstRows float64 `json:"est_rows"`
	RowsIn  int     `json:"rows_in"`
	RowsOut int     `json:"rows_out"`
	WallNS  int64   `json:"wall_ns"`
}

// PlanNode is one block of the query with its conditions' steps and
// the block's resulting binding relation size. Children mirror the
// query's nested blocks in definition order.
type PlanNode struct {
	ID       int         `json:"id"`
	Where    []string    `json:"where,omitempty"`
	SeedRows int         `json:"seed_rows"`
	Rows     int         `json:"rows"`
	Steps    []StepStat  `json:"steps,omitempty"`
	Children []*PlanNode `json:"children,omitempty"`
}

// Profiler collects a plan tree during one Eval. Set it on
// Options.Profiler, evaluate, then read Plan(). A Profiler is
// single-use per evaluation: Eval resets it against the query's block
// tree before binding starts.
type Profiler struct {
	root    *PlanNode
	byBlock map[*Block]*PlanNode
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// reset builds the plan skeleton for a query's block tree, assigning
// pre-order IDs. Called by Eval before the query stage starts.
func (p *Profiler) reset(q *Query) {
	p.byBlock = map[*Block]*PlanNode{}
	id := 0
	var build func(b *Block) *PlanNode
	build = func(b *Block) *PlanNode {
		n := &PlanNode{ID: id}
		id++
		for _, c := range b.Where {
			n.Where = append(n.Where, c.String())
		}
		p.byBlock[b] = n
		for _, ch := range b.Children {
			n.Children = append(n.Children, build(ch))
		}
		return n
	}
	p.root = build(q.Root)
}

// nodeFor returns the plan node of a block; nil for a nil profiler or
// an unknown block.
func (p *Profiler) nodeFor(b *Block) *PlanNode {
	if p == nil {
		return nil
	}
	return p.byBlock[b]
}

// Plan returns the collected plan tree (nil before any evaluation).
func (p *Profiler) Plan() *PlanNode {
	if p == nil {
		return nil
	}
	return p.root
}

// TotalRows sums the binding-relation sizes over the tree — by
// construction equal to the evaluation's Result.Bindings.
func (n *PlanNode) TotalRows() int {
	if n == nil {
		return 0
	}
	total := n.Rows
	for _, c := range n.Children {
		total += c.TotalRows()
	}
	return total
}

// StripWall zeroes every WallNS in the tree, leaving only the
// deterministic fields — two profiles of the same query over the same
// data then compare equal at any worker count.
func (n *PlanNode) StripWall() {
	if n == nil {
		return
	}
	for i := range n.Steps {
		n.Steps[i].WallNS = 0
	}
	for _, c := range n.Children {
		c.StripWall()
	}
}

// WriteText renders the plan tree as an indented explain listing.
func (n *PlanNode) WriteText(w io.Writer) {
	n.writeText(w, 0)
}

func (n *PlanNode) writeText(w io.Writer, depth int) {
	if n == nil {
		return
	}
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%sblock #%d: seed %d rows -> %d rows\n", ind, n.ID, n.SeedRows, n.Rows)
	for _, s := range n.Steps {
		est := "est -"
		if s.EstRows >= 0 {
			est = fmt.Sprintf("est %.0f", s.EstRows)
		}
		idx := ""
		if s.Index != "" {
			idx = " index=" + s.Index
		}
		fmt.Fprintf(w, "%s  [%s]%s %s  (%s, in %d, out %d, %s)\n",
			ind, s.Method, idx, s.Cond, est, s.RowsIn, s.RowsOut,
			time.Duration(s.WallNS))
	}
	for _, c := range n.Children {
		c.writeText(w, depth+1)
	}
}
