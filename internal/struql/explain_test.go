package struql

import (
	"reflect"
	"strings"
	"testing"
)

const explainTestQuery = `INPUT BIBTEX
CREATE RootPage()
COLLECT Roots(RootPage())
WHERE Publications(x), x -> l -> v
CREATE PaperPage(x)
LINK PaperPage(x) -> l -> v,
     RootPage() -> "Paper" -> PaperPage(x)
OUTPUT Site`

func parseQuery(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestProfilerPlanMatchesResult(t *testing.T) {
	q := parseQuery(t, explainTestQuery)
	g := fig2Graph(t)
	prof := NewProfiler()
	res := mustEval(t, q, g, &Options{Profiler: prof})

	plan := prof.Plan()
	if plan == nil {
		t.Fatal("no plan collected")
	}
	// The per-block row counts must account for exactly the bindings
	// the construction stage consumed.
	if got := plan.TotalRows(); got != res.Bindings {
		t.Errorf("plan.TotalRows() = %d, Result.Bindings = %d", got, res.Bindings)
	}
	// The WHERE block records one step per condition, with rows flowing
	// through.
	var whereNode *PlanNode
	for _, c := range plan.Children {
		if len(c.Where) > 0 {
			whereNode = c
		}
	}
	if whereNode == nil {
		t.Fatal("no plan node for the WHERE block")
	}
	if len(whereNode.Steps) != len(whereNode.Where) {
		t.Fatalf("steps = %d, conditions = %d", len(whereNode.Steps), len(whereNode.Where))
	}
	for _, s := range whereNode.Steps {
		if s.Method == "" {
			t.Errorf("step %q has no method", s.Cond)
		}
		if s.EstRows >= 0 {
			t.Errorf("interpreter step %q claims an estimate (%v)", s.Cond, s.EstRows)
		}
	}
	if whereNode.Rows == 0 || whereNode.SeedRows == 0 {
		t.Errorf("where block rows = %d seed = %d, want > 0", whereNode.Rows, whereNode.SeedRows)
	}

	var sb strings.Builder
	plan.WriteText(&sb)
	for _, want := range []string{"block #0", "Publications(x)", "rows"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("explain text missing %q:\n%s", want, sb.String())
		}
	}
}

// TestProfilerWorkerInvariance pins the determinism contract: every
// profiled field except wall time is identical at any worker count.
func TestProfilerWorkerInvariance(t *testing.T) {
	g := fig2Graph(t)
	var base *PlanNode
	for _, workers := range []int{1, 4, 16} {
		q := parseQuery(t, explainTestQuery)
		prof := NewProfiler()
		mustEval(t, q, g, &Options{Profiler: prof, Workers: workers, ParallelThreshold: 1})
		plan := prof.Plan()
		plan.StripWall()
		if base == nil {
			base = plan
			continue
		}
		if !reflect.DeepEqual(base, plan) {
			t.Errorf("plan at workers=%d differs from workers=1", workers)
		}
	}
}

// TestProfilerReuse: a profiler handed to a second evaluation is reset
// and reports the new run, not an accumulation.
func TestProfilerReuse(t *testing.T) {
	g := fig2Graph(t)
	prof := NewProfiler()
	q := parseQuery(t, explainTestQuery)
	mustEval(t, q, g, &Options{Profiler: prof})
	first := prof.Plan().TotalRows()
	q2 := parseQuery(t, explainTestQuery)
	res := mustEval(t, q2, g, &Options{Profiler: prof})
	if got := prof.Plan().TotalRows(); got != res.Bindings || got != first {
		t.Errorf("second run TotalRows = %d, want %d (Bindings %d)", got, first, res.Bindings)
	}
}

func TestProvenanceRecordsConstructedNodes(t *testing.T) {
	q := parseQuery(t, explainTestQuery)
	g := fig2Graph(t)
	prov := NewProvenance()
	res := mustEval(t, q, g, &Options{Provenance: prov})
	if res.NewNodes == 0 {
		t.Fatal("query constructed nothing")
	}
	ids := prov.Nodes()
	if len(ids) == 0 {
		t.Fatal("no provenance recorded")
	}

	byFunc := map[string][]*NodeProvenance{}
	for _, id := range ids {
		np, ok := prov.Node(id)
		if !ok {
			t.Fatalf("Nodes() listed %v but Node() misses it", id)
		}
		byFunc[np.Func] = append(byFunc[np.Func], np)
	}
	if len(byFunc["RootPage"]) != 1 {
		t.Fatalf("RootPage records = %d, want 1", len(byFunc["RootPage"]))
	}
	if len(byFunc["PaperPage"]) != 2 {
		t.Fatalf("PaperPage records = %d, want 2 (pub1, pub2)", len(byFunc["PaperPage"]))
	}
	for _, np := range byFunc["PaperPage"] {
		if np.TupleCount == 0 || len(np.Tuples) == 0 {
			t.Errorf("%s: no binding tuples recorded", np.Name)
		}
		if len(np.Tuples) > maxProvTuples {
			t.Errorf("%s: tuple sample %d exceeds cap %d", np.Name, len(np.Tuples), maxProvTuples)
		}
		// The page's bindings range over exactly one source publication.
		var srcNames []string
		for _, s := range np.Sources {
			srcNames = append(srcNames, s.Name)
		}
		if len(srcNames) != 1 || !strings.HasPrefix(srcNames[0], "pub") {
			t.Errorf("%s: sources = %v, want one pubN", np.Name, srcNames)
		}
		// x -> l -> v binds l over the pub's attribute labels.
		found := false
		for _, a := range np.Attrs {
			if a == "title" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: attrs = %v, want to include \"title\"", np.Name, np.Attrs)
		}
	}
	// RootPage is created unconditionally but linked from the WHERE
	// block (`RootPage() -> "Paper" -> PaperPage(x)`), so its link list
	// — and therefore its provenance — depends on every publication.
	root := byFunc["RootPage"][0]
	if root.TupleCount < 2 {
		t.Errorf("RootPage tuple count = %d, want the WHERE block's rows", root.TupleCount)
	}
	var rootSrcs []string
	for _, s := range root.Sources {
		rootSrcs = append(rootSrcs, s.Name)
	}
	if !reflect.DeepEqual(rootSrcs, []string{"pub1", "pub2"}) {
		t.Errorf("RootPage sources = %v, want [pub1 pub2]", rootSrcs)
	}
}

// TestProvenanceWorkerInvariance: the recorded derivations are part of
// the deterministic output, identical at any worker count.
func TestProvenanceWorkerInvariance(t *testing.T) {
	g := fig2Graph(t)
	snapshot := func(workers int) map[string]*NodeProvenance {
		q := parseQuery(t, explainTestQuery)
		prov := NewProvenance()
		mustEval(t, q, g, &Options{Provenance: prov, Workers: workers, ParallelThreshold: 1})
		out := map[string]*NodeProvenance{}
		for _, id := range prov.Nodes() {
			np, _ := prov.Node(id)
			out[np.Name] = np
		}
		return out
	}
	base := snapshot(1)
	for _, workers := range []int{4, 16} {
		if got := snapshot(workers); !reflect.DeepEqual(base, got) {
			t.Errorf("provenance at workers=%d differs from workers=1", workers)
		}
	}
}

func TestSkolemFuncOf(t *testing.T) {
	for name, want := range map[string]string{
		"YearPage(1997)":  "YearPage",
		"PaperPage(pub1)": "PaperPage",
		"RootPage()":      "RootPage",
		"plain":           "",
		"(odd":            "",
	} {
		if got := skolemFuncOf(name); got != want {
			t.Errorf("skolemFuncOf(%q) = %q, want %q", name, got, want)
		}
	}
}
