package struql

import (
	"testing"

	"strudel/internal/graph"
)

// FuzzParse asserts the parser never panics and that successfully
// parsed queries re-parse from their canonical rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		fig3,
		`WHERE C(x), x -> l -> v COLLECT Out(x)`,
		`WHERE not(p -> l -> q) CREATE F(p), F(q) LINK F(p) -> l -> F(q)`,
		`WHERE a -> ("x"|"y")* . isName -> b COLLECT C(b)`,
		`INPUT a.b WHERE C(x), x -> "y" -> 3, z = x COLLECT D(z) OUTPUT o`,
		`WHERE C(x) CREATE F(x) LINK F(x) -> "n" -> COUNT(x)`,
		`{ WHERE C(x) { WHERE x -> "a" -> y COLLECT O(y) } }`,
		`WHERE x -> l -> y, l in {"a","b"}, y >= 1.5 COLLECT C(y)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, q.String())
		}
		if q.String() != q2.String() {
			t.Fatalf("canonical form unstable:\n%s\nvs\n%s", q.String(), q2.String())
		}
	})
}

// FuzzEval asserts evaluation never panics on parseable queries over a
// small fixed graph (errors are fine; crashes are not).
func FuzzEval(f *testing.F) {
	f.Add(`WHERE C(x), x -> l -> v COLLECT Out(v)`)
	f.Add(`WHERE C(x), x -> * -> q COLLECT R(q)`)
	f.Add(`WHERE not(a -> "x" -> b) CREATE F(a) LINK F(a) -> "y" -> b`)
	g := graph.New("g")
	n1 := g.NewNode("n1")
	n2 := g.NewNode("n2")
	g.AddToCollection("C", graph.NodeValue(n1))
	g.AddEdge(n1, "x", graph.NodeValue(n2))
	g.AddEdge(n2, "y", graph.Int(3))
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Eval(q, g, &Options{MaxBindings: 10_000})
	})
}
