package struql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

// parallelData builds a publication graph large enough to cross the
// chunking threshold, with node-valued and atom-valued edges, cycles,
// and collections.
func parallelData(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("data")
	var ids []graph.OID
	for i := 0; i < n; i++ {
		id := g.NewNode(fmt.Sprintf("pub%d", i))
		ids = append(ids, id)
		g.AddToCollection("Publications", graph.NodeValue(id))
		g.AddEdge(id, "year", graph.Int(int64(1990+rng.Intn(10))))
		g.AddEdge(id, "category", graph.Str(fmt.Sprintf("Cat%d", rng.Intn(12))))
		g.AddEdge(id, "title", graph.Str(fmt.Sprintf("Title %d", i)))
		if len(ids) > 1 {
			g.AddEdge(id, "cites", graph.NodeValue(ids[rng.Intn(len(ids)-1)]))
		}
	}
	return g
}

// parallelQuery exercises nested blocks (bound concurrently), a path
// expression, an aggregate, and Skolem construction in one query.
const parallelQuerySrc = `
WHERE Publications(x), x -> "year" -> y
CREATE YearPage(y)
LINK YearPage(y) -> "Paper" -> x,
     YearPage(y) -> "Count" -> COUNT(x)
{
  WHERE x -> "category" -> c
  CREATE CatPage(c)
  LINK CatPage(c) -> "Paper" -> x
  COLLECT Cats(CatPage(c))
}
{
  WHERE x -> "cites"* -> z, z -> "title" -> t
  LINK YearPage(y) -> "ReachesTitle" -> t
}
COLLECT Years(YearPage(y))
`

// evalAt runs the query with a given worker count, forcing chunked
// expansion with a low threshold, and returns the output graph dump.
func evalAt(t *testing.T, g *graph.Graph, workers, threshold int) string {
	t.Helper()
	q := MustParse(parallelQuerySrc)
	res, err := Eval(q, g, &Options{Workers: workers, ParallelThreshold: threshold})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res.Output.DumpString()
}

// TestEvalParallelByteIdentical: the output graph — Skolem OIDs, edge
// insertion order, collections, aggregates — is byte-identical at
// workers 1, 4 and 16, with chunking forced on even small relations.
func TestEvalParallelByteIdentical(t *testing.T) {
	g := parallelData(300, 7)
	base := evalAt(t, g, 1, 1_000_000) // pure sequential reference
	for _, w := range []int{4, 16} {
		for _, thresh := range []int{1, 256} {
			if got := evalAt(t, g, w, thresh); got != base {
				t.Fatalf("workers=%d threshold=%d: output differs from sequential evaluation", w, thresh)
			}
		}
	}
}

// TestEvalParallelQuick: random graphs evaluate identically at any
// worker count.
func TestEvalParallelQuick(t *testing.T) {
	prop := func(seed int64) bool {
		g := parallelData(60, seed)
		base := evalAt(t, g, 1, 1_000_000)
		return evalAt(t, g, 8, 1) == base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestEvalParallelError: a failing condition reports the same error
// at any worker count, with no partial panic from a worker.
func TestEvalParallelError(t *testing.T) {
	g := parallelData(50, 3)
	q := MustParse(`WHERE Publications(x), noSuchPredicate(x) COLLECT C(x)`)
	var want string
	for i, w := range []int{1, 4, 16} {
		_, err := Eval(q, g, &Options{Workers: w, ParallelThreshold: 1})
		if err == nil {
			t.Fatalf("workers=%d: expected error", w)
		}
		if i == 0 {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("workers=%d: error %q differs from sequential %q", w, err.Error(), want)
		}
	}
}

// TestEvalBindingsSequentialUnchanged: the EvalBindings entry point
// (used by click-time evaluation, which parallelizes across pages
// instead) stays on the sequential path and agrees with Eval's query
// stage.
func TestEvalBindingsSequentialUnchanged(t *testing.T) {
	g := parallelData(80, 11)
	conds := MustParse(`WHERE Publications(x), x -> "year" -> y COLLECT C(x)`).Root.Where
	rows, err := EvalBindings(g, nil, conds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 80 {
		t.Fatalf("rows = %d, want 80", len(rows))
	}
}
