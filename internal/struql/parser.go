package struql

import (
	"fmt"
	"strconv"
	"strings"

	"strudel/internal/graph"
)

// Parse parses a StruQL query.
//
// The concrete syntax follows the paper's relaxed block form: clauses
// may intermix, and each WHERE keyword opens a new (sibling) block
// whose conditions are conjoined with those of its ancestors, exactly
// as braced sub-blocks are. Keywords are case-insensitive.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.fill(); err != nil {
		return nil, err
	}
	q := &Query{Source: src}
	if p.isKeyword("input") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseGraphName()
		if err != nil {
			return nil, err
		}
		q.Input = name
	}
	root, err := p.parseBlockBody()
	if err != nil {
		return nil, err
	}
	q.Root = root
	if p.isKeyword("output") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.parseGraphName()
		if err != nil {
			return nil, err
		}
		q.Output = name
	}
	if p.cur().kind != tEOF {
		return nil, p.errf("unexpected %v %q after query", p.cur().kind, p.cur().text)
	}
	if err := Check(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex *lexer
	buf [2]tok // lookahead window
	n   int    // valid tokens in buf
}

func (p *parser) fill() error {
	for p.n < 2 {
		t, err := p.lex.next()
		if err != nil {
			return err
		}
		p.buf[p.n] = t
		p.n++
	}
	return nil
}

func (p *parser) cur() tok  { return p.buf[0] }
func (p *parser) peek() tok { return p.buf[1] }

func (p *parser) advance() error {
	p.buf[0] = p.buf[1]
	p.n = 1
	return p.fill()
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("struql: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind) (tok, error) {
	if p.cur().kind != kind {
		return tok{}, p.errf("expected %v, found %v %q", kind, p.cur().kind, p.cur().text)
	}
	t := p.cur()
	if err := p.advance(); err != nil {
		return tok{}, err
	}
	return t, nil
}

// parseGraphName parses a graph name, which may contain dots and
// colons (source graphs are named like "src:people.csv").
func (p *parser) parseGraphName() (string, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return "", err
	}
	out := name.text
	for p.cur().kind == tDot {
		if err := p.advance(); err != nil {
			return "", err
		}
		part, err := p.expect(tIdent)
		if err != nil {
			return "", err
		}
		out += "." + part.text
	}
	return out, nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tIdent && strings.EqualFold(p.cur().text, kw)
}

// parseBlockBody parses a sequence of clauses and sub-blocks up to a
// closing brace, OUTPUT, or EOF. Clauses before the first WHERE attach
// to the enclosing block; each WHERE starts a new child block.
func (p *parser) parseBlockBody() (*Block, error) {
	root := &Block{}
	current := root
	sawWhere := false
	for {
		switch {
		case p.isKeyword("where"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			conds, err := p.parseConditions()
			if err != nil {
				return nil, err
			}
			if !sawWhere && len(current.Creates) == 0 && len(current.Links) == 0 && len(current.Collects) == 0 && len(current.Children) == 0 {
				// First clause of the block: attach directly.
				current.Where = append(current.Where, conds...)
			} else {
				// A later WHERE opens a block nested in the current
				// one, so its conditions conjoin with all bindings
				// established so far (paper Sec. 3: intermixed
				// clauses, nested queries).
				child := &Block{Where: conds}
				current.Children = append(current.Children, child)
				current = child
			}
			sawWhere = true
		case p.isKeyword("create"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			terms, err := p.parseSkolemList()
			if err != nil {
				return nil, err
			}
			current.Creates = append(current.Creates, terms...)
		case p.isKeyword("link"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			links, err := p.parseLinkList()
			if err != nil {
				return nil, err
			}
			current.Links = append(current.Links, links...)
		case p.isKeyword("collect"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			colls, err := p.parseCollectList()
			if err != nil {
				return nil, err
			}
			current.Collects = append(current.Collects, colls...)
		case p.cur().kind == tLBrace:
			if err := p.advance(); err != nil {
				return nil, err
			}
			child, err := p.parseBlockBody()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrace); err != nil {
				return nil, err
			}
			current.Children = append(current.Children, child)
		default:
			return root, nil
		}
	}
}

// parseConditions parses a comma-separated condition list. The list
// ends at a keyword, brace, or EOF.
func (p *parser) parseConditions() ([]Condition, error) {
	var conds []Condition
	for {
		c, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c...)
		if p.cur().kind != tComma {
			return conds, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// parseCondition parses one condition; an arrow chain like
// x -> * -> y -> l -> z expands to multiple conditions.
func (p *parser) parseCondition() ([]Condition, error) {
	if p.isKeyword("not") && p.peek().kind == tLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil { // '('
			return nil, err
		}
		inner, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		if len(inner) != 1 {
			return nil, p.errf("not(...) takes exactly one condition, found a chain of %d", len(inner))
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return []Condition{&NotCond{Inner: inner[0]}}, nil
	}
	// Name(args): collection membership or external predicate.
	if p.cur().kind == tIdent && p.peek().kind == tLParen && !strings.EqualFold(p.cur().text, "true") && !strings.EqualFold(p.cur().text, "false") {
		name := p.cur().text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil { // '('
			return nil, err
		}
		var args []Term
		for p.cur().kind != tRParen {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.cur().kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil { // ')'
			return nil, err
		}
		if len(args) == 1 {
			return []Condition{&MembershipCond{Collection: name, Arg: args[0]}}, nil
		}
		return []Condition{&PredCond{Name: name, Args: args}}, nil
	}
	// Term-led condition: comparison, in-set, or arrow chain.
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	switch p.cur().kind {
	case tEq, tNeq, tLt, tLe, tGt, tGe:
		op := map[tokKind]CompareOp{tEq: OpEq, tNeq: OpNeq, tLt: OpLt, tLe: OpLe, tGt: OpGt, tGe: OpGe}[p.cur().kind]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return []Condition{&CompareCond{Left: left, Op: op, Right: right}}, nil
	case tArrow:
		return p.parseChain(left)
	case tIdent:
		if strings.EqualFold(p.cur().text, "in") {
			if !left.IsVar() {
				return nil, p.errf("left side of 'in' must be a variable")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tLBrace); err != nil {
				return nil, err
			}
			var set []string
			for {
				s, err := p.expect(tString)
				if err != nil {
					return nil, err
				}
				set = append(set, s.text)
				if p.cur().kind != tComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tRBrace); err != nil {
				return nil, err
			}
			return []Condition{&InSetCond{Var: left.Var, Set: set}}, nil
		}
	}
	return nil, p.errf("expected a condition after %s, found %v %q", left, p.cur().kind, p.cur().text)
}

// parseChain parses (-> path -> term)+ emitting one condition per hop.
func (p *parser) parseChain(from Term) ([]Condition, error) {
	var conds []Condition
	for p.cur().kind == tArrow {
		if err := p.advance(); err != nil {
			return nil, err
		}
		mid, arcVar, err := p.parsePathSegment()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tArrow); err != nil {
			return nil, err
		}
		to, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		switch {
		case arcVar != "":
			conds = append(conds, &EdgeCond{From: from, Label: LabelTerm{Var: arcVar}, To: to})
		case mid.Op == PathPred && mid.Pred.Ext == "":
			conds = append(conds, &EdgeCond{From: from, Label: LabelTerm{Lit: mid.Pred.Lit, Any: mid.Pred.Any}, To: to})
		default:
			conds = append(conds, &PathCond{From: from, Path: mid, To: to})
		}
		from = to
	}
	return conds, nil
}

// parsePathSegment parses the middle of an arrow: either an arc
// variable (returned as arcVar) or a regular path expression.
func (p *parser) parsePathSegment() (*PathExpr, string, error) {
	// A bare identifier immediately followed by '->' is an arc
	// variable, except the keywords 'true' (any label) and '_'.
	if p.cur().kind == tIdent && p.peek().kind == tArrow {
		name := p.cur().text
		if !strings.EqualFold(name, "true") && name != "_" {
			if err := p.advance(); err != nil {
				return nil, "", err
			}
			return nil, name, nil
		}
	}
	// A lone '*' means "any path": (true)*.
	if p.cur().kind == tStar && p.peek().kind == tArrow {
		if err := p.advance(); err != nil {
			return nil, "", err
		}
		return &PathExpr{Op: PathStar, Left: anyPred()}, "", nil
	}
	e, err := p.parsePathAlt()
	if err != nil {
		return nil, "", err
	}
	return e, "", nil
}

func anyPred() *PathExpr {
	return &PathExpr{Op: PathPred, Pred: &LabelPred{Any: true}}
}

// parsePathAlt parses R ('|' R)*.
func (p *parser) parsePathAlt() (*PathExpr, error) {
	left, err := p.parsePathConcat()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tBar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePathConcat()
		if err != nil {
			return nil, err
		}
		left = &PathExpr{Op: PathAlt, Left: left, Right: right}
	}
	return left, nil
}

// parsePathConcat parses R ('.' R)*.
func (p *parser) parsePathConcat() (*PathExpr, error) {
	left, err := p.parsePathPost()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePathPost()
		if err != nil {
			return nil, err
		}
		left = &PathExpr{Op: PathConcat, Left: left, Right: right}
	}
	return left, nil
}

// parsePathPost parses an atom followed by zero or more '*'.
func (p *parser) parsePathPost() (*PathExpr, error) {
	atom, err := p.parsePathAtom()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tStar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		atom = &PathExpr{Op: PathStar, Left: atom}
	}
	return atom, nil
}

func (p *parser) parsePathAtom() (*PathExpr, error) {
	switch p.cur().kind {
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parsePathAlt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tString:
		lit := p.cur().text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &PathExpr{Op: PathPred, Pred: &LabelPred{Lit: lit}}, nil
	case tIdent:
		name := p.cur().text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.EqualFold(name, "true") || name == "_" {
			return anyPred(), nil
		}
		return &PathExpr{Op: PathPred, Pred: &LabelPred{Ext: name}}, nil
	default:
		return nil, p.errf("expected a path expression, found %v %q", p.cur().kind, p.cur().text)
	}
}

// parseTerm parses a variable or constant.
func (p *parser) parseTerm() (Term, error) {
	switch p.cur().kind {
	case tIdent:
		name := p.cur().text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		switch strings.ToLower(name) {
		case "true":
			return ConstTerm(graph.Bool(true)), nil
		case "false":
			return ConstTerm(graph.Bool(false)), nil
		}
		return VarTerm(name), nil
	case tString:
		s := p.cur().text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return ConstTerm(graph.Str(s)), nil
	case tInt:
		n, err := strconv.ParseInt(p.cur().text, 10, 64)
		if err != nil {
			return Term{}, p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return ConstTerm(graph.Int(n)), nil
	case tFloat:
		f, err := strconv.ParseFloat(p.cur().text, 64)
		if err != nil {
			return Term{}, p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return ConstTerm(graph.Float(f)), nil
	default:
		return Term{}, p.errf("expected a term, found %v %q", p.cur().kind, p.cur().text)
	}
}

// parseSkolemList parses F(args) (',' F(args))*.
func (p *parser) parseSkolemList() ([]SkolemTerm, error) {
	var out []SkolemTerm
	for {
		s, err := p.parseSkolem()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if p.cur().kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseSkolem() (SkolemTerm, error) {
	name, err := p.expect(tIdent)
	if err != nil {
		return SkolemTerm{}, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return SkolemTerm{}, err
	}
	var args []Term
	for p.cur().kind != tRParen {
		t, err := p.parseTerm()
		if err != nil {
			return SkolemTerm{}, err
		}
		args = append(args, t)
		if p.cur().kind == tComma {
			if err := p.advance(); err != nil {
				return SkolemTerm{}, err
			}
		}
	}
	if err := p.advance(); err != nil { // ')'
		return SkolemTerm{}, err
	}
	return SkolemTerm{Func: name.text, Args: args}, nil
}

// parseLinkList parses link clauses: target -> label -> target, ...
func (p *parser) parseLinkList() ([]Link, error) {
	var out []Link
	for {
		from, err := p.parseLinkTarget()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tArrow); err != nil {
			return nil, err
		}
		label, err := p.parseLinkLabel()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tArrow); err != nil {
			return nil, err
		}
		to, err := p.parseLinkTarget()
		if err != nil {
			return nil, err
		}
		out = append(out, Link{From: from, Label: label, To: to})
		if p.cur().kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseLinkLabel() (LabelTerm, error) {
	switch p.cur().kind {
	case tString:
		lit := p.cur().text
		if err := p.advance(); err != nil {
			return LabelTerm{}, err
		}
		return LabelTerm{Lit: lit}, nil
	case tIdent:
		name := p.cur().text
		if err := p.advance(); err != nil {
			return LabelTerm{}, err
		}
		return LabelTerm{Var: name}, nil
	default:
		return LabelTerm{}, p.errf("expected a link label, found %v %q", p.cur().kind, p.cur().text)
	}
}

// aggOps maps the aggregate keywords (case-insensitive).
var aggOps = map[string]AggOp{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

// parseLinkTarget parses a Skolem term, aggregate, variable, or
// constant.
func (p *parser) parseLinkTarget() (LinkTarget, error) {
	if p.cur().kind == tIdent && p.peek().kind == tLParen {
		if op, isAgg := aggOps[strings.ToUpper(p.cur().text)]; isAgg {
			if err := p.advance(); err != nil {
				return LinkTarget{}, err
			}
			if err := p.advance(); err != nil { // '('
				return LinkTarget{}, err
			}
			v, err := p.expect(tIdent)
			if err != nil {
				return LinkTarget{}, err
			}
			if _, err := p.expect(tRParen); err != nil {
				return LinkTarget{}, err
			}
			return LinkTarget{Agg: &AggTerm{Op: op, Var: v.text}}, nil
		}
		s, err := p.parseSkolem()
		if err != nil {
			return LinkTarget{}, err
		}
		return LinkTarget{Skolem: &s}, nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return LinkTarget{}, err
	}
	return LinkTarget{Term: &t}, nil
}

// parseCollectList parses collect clauses: Name(target), ...
func (p *parser) parseCollectList() ([]Collect, error) {
	var out []Collect
	for {
		name, err := p.expect(tIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		target, err := p.parseLinkTarget()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		out = append(out, Collect{Collection: name.text, Target: target})
		if p.cur().kind != tComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}
