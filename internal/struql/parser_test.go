package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// fig3 is the paper's Fig. 3 site-definition query for the example
// homepage site.
const fig3 = `
INPUT BIBTEX
// Create Root & Abstracts page and link them
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
// Create a presentation for every publication x
WHERE Publications(x), x -> l -> v
CREATE PaperPresentation(x), AbstractPage(x)
LINK AbstractPage(x) -> l -> v,
     PaperPresentation(x) -> l -> v,
     PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
{
  // Create a page for every year
  WHERE l = "year"
  CREATE YearPage(v)
  LINK YearPage(v) -> "Year" -> v,
       YearPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(v)
}
{
  // Create a page for every category
  WHERE l = "category"
  CREATE CategoryPage(v)
  LINK CategoryPage(v) -> "Name" -> v,
       CategoryPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(v)
}
OUTPUT HomePage
`

func TestParseFig3Structure(t *testing.T) {
	q, err := Parse(fig3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Input != "BIBTEX" || q.Output != "HomePage" {
		t.Errorf("input/output = %q/%q", q.Input, q.Output)
	}
	root := q.Root
	if len(root.Creates) != 2 || len(root.Links) != 1 || len(root.Where) != 0 {
		t.Errorf("root block: %d creates, %d links, %d where", len(root.Creates), len(root.Links), len(root.Where))
	}
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want 1 (Q1)", len(root.Children))
	}
	q1 := root.Children[0]
	if len(q1.Where) != 2 {
		t.Errorf("Q1 has %d conditions, want 2", len(q1.Where))
	}
	if len(q1.Creates) != 2 || len(q1.Links) != 4 {
		t.Errorf("Q1: %d creates, %d links", len(q1.Creates), len(q1.Links))
	}
	if len(q1.Children) != 2 {
		t.Fatalf("Q1 has %d children, want 2 (Q2, Q3)", len(q1.Children))
	}
	q2 := q1.Children[0]
	if len(q2.Where) != 1 || len(q2.Creates) != 1 || len(q2.Links) != 3 {
		t.Errorf("Q2 shape wrong: %+v", q2)
	}
	cmp, ok := q2.Where[0].(*CompareCond)
	if !ok || cmp.Op != OpEq || cmp.Left.Var != "l" {
		t.Errorf("Q2 condition = %v", q2.Where[0])
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	q1, err := Parse(fig3)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q1.String())
	if err != nil {
		t.Fatalf("reparse of String() failed: %v\n%s", err, q1.String())
	}
	if q1.String() != q2.String() {
		t.Errorf("String() not stable:\n%s\nvs\n%s", q1.String(), q2.String())
	}
}

func TestParseArrowChain(t *testing.T) {
	q, err := Parse(`WHERE Publications(x), x -> * -> y -> l -> z COLLECT Out(z)`)
	if err != nil {
		t.Fatal(err)
	}
	conds := q.Root.Where
	if len(conds) != 3 {
		t.Fatalf("chain expanded to %d conditions, want 3", len(conds))
	}
	pc, ok := conds[1].(*PathCond)
	if !ok || pc.Path.Op != PathStar {
		t.Errorf("second condition = %v, want any-path", conds[1])
	}
	ec, ok := conds[2].(*EdgeCond)
	if !ok || ec.Label.Var != "l" {
		t.Errorf("third condition = %v, want edge with arc variable", conds[2])
	}
	if ec.From.Var != "y" || ec.To.Var != "z" {
		t.Errorf("chain endpoints wrong: %v", ec)
	}
}

func TestParsePathExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string // String() of the parsed path
	}{
		{`WHERE a -> "x" . "y" -> b COLLECT C(b)`, `("x"."y")`},
		{`WHERE a -> "x" | "y" -> b COLLECT C(b)`, `("x"|"y")`},
		{`WHERE a -> "x"* -> b COLLECT C(b)`, `"x"*`},
		{`WHERE a -> ("x"."y")* -> b COLLECT C(b)`, `("x"."y")*`},
		{`WHERE a -> isName* -> b COLLECT C(b)`, `isName*`},
		{`WHERE a -> _ . "y" -> b COLLECT C(b)`, `(_."y")`},
		{`WHERE a -> "x" . true* -> b COLLECT C(b)`, `("x"._*)`},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		pc, ok := q.Root.Where[0].(*PathCond)
		if !ok {
			t.Errorf("%s: condition is %T, want PathCond", c.src, q.Root.Where[0])
			continue
		}
		if got := pc.Path.String(); got != c.want {
			t.Errorf("%s: path = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseSingleEdgeForms(t *testing.T) {
	q := MustParse(`WHERE a -> "Paper" -> b, a -> _ -> c, a -> lbl -> d COLLECT C(b)`)
	e0 := q.Root.Where[0].(*EdgeCond)
	if e0.Label.Lit != "Paper" {
		t.Errorf("literal edge = %v", e0)
	}
	e1 := q.Root.Where[1].(*EdgeCond)
	if !e1.Label.Any {
		t.Errorf("wildcard edge = %v", e1)
	}
	e2 := q.Root.Where[2].(*EdgeCond)
	if e2.Label.Var != "lbl" {
		t.Errorf("arc-variable edge = %v", e2)
	}
}

func TestParseInSet(t *testing.T) {
	q := MustParse(`WHERE x -> l -> y, l in {"Paper", "TechReport"} COLLECT C(y)`)
	c, ok := q.Root.Where[1].(*InSetCond)
	if !ok || c.Var != "l" || len(c.Set) != 2 {
		t.Fatalf("in-set condition = %v", q.Root.Where[1])
	}
}

func TestParseNotAndPredicates(t *testing.T) {
	q := MustParse(`WHERE HomePages(p), p -> "Paper" -> q, isPostScript(q), not(isImageFile(q)) COLLECT PostscriptPages(q)`)
	if _, ok := q.Root.Where[2].(*MembershipCond); !ok {
		t.Errorf("isPostScript(q) should parse as membership (resolved semantically), got %T", q.Root.Where[2])
	}
	n, ok := q.Root.Where[3].(*NotCond)
	if !ok {
		t.Fatalf("not condition = %T", q.Root.Where[3])
	}
	if _, ok := n.Inner.(*MembershipCond); !ok {
		t.Errorf("inner = %T", n.Inner)
	}
}

func TestParseComparisons(t *testing.T) {
	q := MustParse(`WHERE Pubs(x), x -> "year" -> y, y >= 1997, y != 2000 COLLECT Recent(x)`)
	c2 := q.Root.Where[2].(*CompareCond)
	if c2.Op != OpGe {
		t.Errorf("op = %v", c2.Op)
	}
	if v, ok := c2.Right.Const.AsInt(); !ok || v != 1997 {
		t.Errorf("rhs = %v", c2.Right)
	}
	c3 := q.Root.Where[3].(*CompareCond)
	if c3.Op != OpNeq {
		t.Errorf("op = %v", c3.Op)
	}
}

func TestParseBoolAndFloatTerms(t *testing.T) {
	q := MustParse(`WHERE Pubs(x), x -> "flag" -> f, f = true, x -> "w" -> w, w < 2.5 COLLECT C(x)`)
	eq := q.Root.Where[2].(*CompareCond)
	if b, ok := eq.Right.Const.AsBool(); !ok || !b {
		t.Errorf("bool const = %v", eq.Right)
	}
	lt := q.Root.Where[4].(*CompareCond)
	if f, ok := lt.Right.Const.AsFloat(); !ok || f != 2.5 {
		t.Errorf("float const = %v", lt.Right)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"link from variable", `WHERE C(x) CREATE F(x) LINK x -> "a" -> F(x)`, "immutable"},
		{"unknown skolem in link", `WHERE C(x) CREATE F(x) LINK F(x) -> "a" -> G(x)`, "no create clause"},
		{"unbound var in create", `WHERE C(x) CREATE F(y)`, "unbound variable"},
		{"unbound var in collect", `WHERE C(x) COLLECT Out(z)`, "unbound variable"},
		{"unbound arc var in link", `WHERE C(x) CREATE F(x) LINK F(x) -> m -> F(x)`, "unbound arc variable"},
		{"unknown skolem in collect", `WHERE C(x) COLLECT Out(G(x))`, "no create clause"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestCheckScopePropagation(t *testing.T) {
	// Skolem created in an ancestor scope is usable in a child block
	// (Fig. 3 uses RootPage() created at the root inside Q2/Q3).
	src := `
CREATE Root()
WHERE C(x)
CREATE Page(x)
LINK Root() -> "p" -> Page(x)
{ WHERE x -> "y" -> v LINK Page(x) -> "v" -> v }
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	// The created set is query-global (Skolem identity is global), so
	// a sibling may reference a function created in another branch.
	crossSibling := `
WHERE C(x)
CREATE Page(x)
{ WHERE x -> "a" -> u CREATE A(u) LINK A(u) -> "x" -> u }
{ WHERE x -> "b" -> w LINK A(w) -> "x" -> w }
`
	if _, err := Parse(crossSibling); err != nil {
		t.Fatalf("cross-sibling Skolem reference should be legal: %v", err)
	}
	// But a function never created anywhere is still an error.
	if _, err := Parse(`WHERE C(x) CREATE F(x) LINK F(x) -> "a" -> Ghost(x)`); err == nil {
		t.Fatal("uncreated Skolem function should be rejected")
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"garbage after query", `COLLECT C(x) WHERE` + ` zzz`},
		{"unterminated string", `WHERE C(x`},
		{"bad arrow", `WHERE x -> -> y COLLECT C(x)`},
		{"missing paren", `WHERE C(x COLLECT D(x)`},
		{"stray char", `WHERE C(x) @`},
		{"chain into keyword", `WHERE x -> COLLECT C(x)`},
		{"not with chain", `WHERE not(a -> "x" -> b -> "y" -> c) COLLECT C(a)`},
		{"lone term", `WHERE x COLLECT C(x)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("expected error for %q", c.src)
			}
		})
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`input G where C(x) collect Out(x) output H`); err != nil {
		t.Fatal(err)
	}
}

func TestParseLinkConstantTarget(t *testing.T) {
	q := MustParse(`WHERE C(x) CREATE F(x) LINK F(x) -> "n" -> "const", F(x) -> "i" -> 42`)
	if len(q.Root.Links) != 2 {
		t.Fatal("want 2 links")
	}
	if q.Root.Links[0].To.Term.Const != graph.Str("const") {
		t.Errorf("string const target = %v", q.Root.Links[0].To)
	}
	if q.Root.Links[1].To.Term.Const != graph.Int(42) {
		t.Errorf("int const target = %v", q.Root.Links[1].To)
	}
}

func TestLexerNumbersVsConcatDot(t *testing.T) {
	// "x" . "y" uses '.' as concatenation; 2.5 is a float.
	l := newLexer(`2.5 2 . 5 -3`)
	var kinds []tokKind
	for {
		tk, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tk.kind == tEOF {
			break
		}
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tFloat, tInt, tDot, tInt, tInt}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestVarsClassification(t *testing.T) {
	q := MustParse(`WHERE C(x), x -> l -> v, l in {"a"} COLLECT Out(v)`)
	vars := q.Root.Vars()
	if vars["x"] != nodeVar || vars["v"] != nodeVar {
		t.Errorf("node vars misclassified: %v", vars)
	}
	if vars["l"] != arcVar {
		t.Errorf("arc var misclassified: %v", vars)
	}
}
