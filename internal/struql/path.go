package struql

import (
	"fmt"
	"sort"

	"strudel/internal/graph"
)

// nfa is a Thompson-constructed automaton over edge labels, used to
// evaluate regular path expressions by traversing the product of the
// graph and the automaton.
type nfa struct {
	start, accept int
	numStates     int
	eps           [][]int           // epsilon transitions per state
	trans         [][]nfaTransition // labeled transitions per state
}

type nfaTransition struct {
	pred labelMatcher
	to   int
}

// labelMatcher tests one edge label.
type labelMatcher func(string) bool

// compilePath builds an NFA for a path expression, resolving external
// label predicates against the registry.
func compilePath(e *PathExpr, reg *Registry) (*nfa, error) {
	n := &nfa{}
	start, accept, err := n.build(e, reg)
	if err != nil {
		return nil, err
	}
	n.start, n.accept = start, accept
	return n, nil
}

func (n *nfa) newState() int {
	n.eps = append(n.eps, nil)
	n.trans = append(n.trans, nil)
	n.numStates++
	return n.numStates - 1
}

func (n *nfa) build(e *PathExpr, reg *Registry) (start, accept int, err error) {
	switch e.Op {
	case PathPred:
		m, err := matcherFor(e.Pred, reg)
		if err != nil {
			return 0, 0, err
		}
		s, a := n.newState(), n.newState()
		n.trans[s] = append(n.trans[s], nfaTransition{pred: m, to: a})
		return s, a, nil
	case PathConcat:
		ls, la, err := n.build(e.Left, reg)
		if err != nil {
			return 0, 0, err
		}
		rs, ra, err := n.build(e.Right, reg)
		if err != nil {
			return 0, 0, err
		}
		n.eps[la] = append(n.eps[la], rs)
		return ls, ra, nil
	case PathAlt:
		ls, la, err := n.build(e.Left, reg)
		if err != nil {
			return 0, 0, err
		}
		rs, ra, err := n.build(e.Right, reg)
		if err != nil {
			return 0, 0, err
		}
		s, a := n.newState(), n.newState()
		n.eps[s] = append(n.eps[s], ls, rs)
		n.eps[la] = append(n.eps[la], a)
		n.eps[ra] = append(n.eps[ra], a)
		return s, a, nil
	case PathStar:
		is, ia, err := n.build(e.Left, reg)
		if err != nil {
			return 0, 0, err
		}
		s, a := n.newState(), n.newState()
		n.eps[s] = append(n.eps[s], is, a)
		n.eps[ia] = append(n.eps[ia], is, a)
		return s, a, nil
	default:
		return 0, 0, fmt.Errorf("struql: unknown path operator %d", e.Op)
	}
}

func matcherFor(p *LabelPred, reg *Registry) (labelMatcher, error) {
	switch {
	case p.Any:
		return func(string) bool { return true }, nil
	case p.Ext != "":
		fn, ok := reg.labelPred(p.Ext)
		if !ok {
			return nil, fmt.Errorf("struql: unknown label predicate %q in path expression", p.Ext)
		}
		return labelMatcher(fn), nil
	default:
		lit := p.Lit
		return func(l string) bool { return l == lit }, nil
	}
}

// closure expands a state set through epsilon transitions, in place.
func (n *nfa) closure(states map[int]struct{}) {
	stack := make([]int, 0, len(states))
	for s := range states {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if _, ok := states[t]; !ok {
				states[t] = struct{}{}
				stack = append(stack, t)
			}
		}
	}
}

// acceptsEmpty reports whether the empty path matches.
func (n *nfa) acceptsEmpty() bool {
	set := map[int]struct{}{n.start: {}}
	n.closure(set)
	_, ok := set[n.accept]
	return ok
}

// reach computes all values reachable from src by a path whose label
// sequence matches the automaton. It explores the product of the graph
// and the NFA breadth-first, memoizing visited (value, state) pairs,
// so it runs in O(|edges| x |states|).
func (n *nfa) reach(g *graph.Graph, src graph.Value) []graph.Value {
	type pair struct {
		val   graph.Value
		state int
	}
	visited := map[pair]struct{}{}
	accepted := map[graph.Value]struct{}{}
	var order []graph.Value

	// Seed with the epsilon closure of the start state at src. States
	// are enqueued in sorted order so the acceptance order — and with it
	// the order of downstream bindings — is deterministic across runs.
	startSet := map[int]struct{}{n.start: {}}
	n.closure(startSet)
	queue := make([]pair, 0, len(startSet))
	for _, s := range sortedStates(startSet) {
		p := pair{src, s}
		visited[p] = struct{}{}
		queue = append(queue, p)
	}
	accept := func(v graph.Value) {
		if _, ok := accepted[v]; !ok {
			accepted[v] = struct{}{}
			order = append(order, v)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p.state == n.accept {
			accept(p.val)
		}
		if !p.val.IsNode() {
			continue // atoms have no outgoing edges
		}
		g.EachOut(p.val.OID(), func(e graph.Edge) bool {
			for _, tr := range n.trans[p.state] {
				if !tr.pred(e.Label) {
					continue
				}
				next := map[int]struct{}{tr.to: {}}
				n.closure(next)
				for _, s := range sortedStates(next) {
					np := pair{e.To, s}
					if _, seen := visited[np]; !seen {
						visited[np] = struct{}{}
						queue = append(queue, np)
					}
				}
			}
			return true
		})
	}
	return order
}

// sortedStates returns the states of a set in increasing order.
func sortedStates(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// matches reports whether a path matching the automaton connects src
// to dst. It reuses reach but stops early when dst is accepted.
func (n *nfa) matches(g *graph.Graph, src, dst graph.Value) bool {
	for _, v := range n.reach(g, src) {
		if v == dst {
			return true
		}
	}
	return false
}
