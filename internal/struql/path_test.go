package struql

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

// chainGraph builds a -x-> b -y-> c -x-> d with an atom leaf on d.
func chainGraph() (*graph.Graph, [4]graph.OID) {
	g := graph.New("chain")
	a, b, c, d := g.NewNode("a"), g.NewNode("b"), g.NewNode("c"), g.NewNode("d")
	g.AddEdge(a, "x", graph.NodeValue(b))
	g.AddEdge(b, "y", graph.NodeValue(c))
	g.AddEdge(c, "x", graph.NodeValue(d))
	g.AddEdge(d, "leaf", graph.Str("end"))
	return g, [4]graph.OID{a, b, c, d}
}

func pathOf(t *testing.T, src string) *PathExpr {
	t.Helper()
	q := MustParse(`WHERE a -> ` + src + ` -> b COLLECT C(b)`)
	pc, ok := q.Root.Where[0].(*PathCond)
	if !ok {
		// Single literal/any edges parse as EdgeCond; wrap them.
		ec := q.Root.Where[0].(*EdgeCond)
		return &PathExpr{Op: PathPred, Pred: &LabelPred{Lit: ec.Label.Lit, Any: ec.Label.Any}}
	}
	return pc.Path
}

func reachNames(t *testing.T, g *graph.Graph, src graph.Value, expr string, reg *Registry) []string {
	t.Helper()
	if reg == nil {
		reg = NewRegistry()
	}
	n, err := compilePath(pathOf(t, expr), reg)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, v := range n.reach(g, src) {
		names = append(names, g.DisplayValue(v))
	}
	return names
}

func TestPathSingleLabel(t *testing.T) {
	g, n := chainGraph()
	got := reachNames(t, g, graph.NodeValue(n[0]), `"x"`, nil)
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("reach = %v", got)
	}
}

func TestPathConcat(t *testing.T) {
	g, n := chainGraph()
	got := reachNames(t, g, graph.NodeValue(n[0]), `"x"."y"`, nil)
	if len(got) != 1 || got[0] != "c" {
		t.Errorf("reach = %v", got)
	}
}

func TestPathAlt(t *testing.T) {
	g, n := chainGraph()
	got := reachNames(t, g, graph.NodeValue(n[1]), `"y"|"x"`, nil)
	if len(got) != 1 || got[0] != "c" {
		t.Errorf("reach = %v", got)
	}
}

func TestPathStarIncludesSource(t *testing.T) {
	g, n := chainGraph()
	got := reachNames(t, g, graph.NodeValue(n[0]), `*`, nil)
	// All nodes plus the atom, including the source itself.
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true, `"end"`: true}
	if len(got) != len(want) {
		t.Fatalf("reach = %v", got)
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("unexpected %q in reach", name)
		}
	}
}

func TestPathStarOfLabel(t *testing.T) {
	g := graph.New("loop")
	a, b, c := g.NewNode("a"), g.NewNode("b"), g.NewNode("c")
	g.AddEdge(a, "n", graph.NodeValue(b))
	g.AddEdge(b, "n", graph.NodeValue(c))
	g.AddEdge(c, "n", graph.NodeValue(a)) // cycle
	got := reachNames(t, g, graph.NodeValue(a), `"n"*`, nil)
	if len(got) != 3 {
		t.Errorf("cycle reach = %v", got)
	}
}

func TestPathMixedStarConcat(t *testing.T) {
	g, n := chainGraph()
	// "x" . _* : one x edge then anything.
	got := reachNames(t, g, graph.NodeValue(n[0]), `"x" . true*`, nil)
	want := map[string]bool{"b": true, "c": true, "d": true, `"end"`: true}
	if len(got) != len(want) {
		t.Fatalf("reach = %v", got)
	}
}

func TestPathExternalLabelPredicate(t *testing.T) {
	g, n := chainGraph()
	reg := NewRegistry()
	reg.RegisterLabel("isShort", func(l string) bool { return len(l) == 1 })
	got := reachNames(t, g, graph.NodeValue(n[0]), `isShort*`, reg)
	// x and y are short; "leaf" is not.
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	if len(got) != len(want) {
		t.Errorf("reach = %v", got)
	}
}

func TestPathUnknownLabelPredicate(t *testing.T) {
	_, err := compilePath(&PathExpr{Op: PathPred, Pred: &LabelPred{Ext: "nosuch"}}, NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "unknown label predicate") {
		t.Errorf("err = %v", err)
	}
}

func TestPathFromAtomSource(t *testing.T) {
	g, _ := chainGraph()
	// Atoms reach only themselves, and only via the empty path.
	atom := graph.Str("end")
	if got := reachNames(t, g, atom, `*`, nil); len(got) != 1 || got[0] != `"end"` {
		t.Errorf("atom reach via star = %v", got)
	}
	if got := reachNames(t, g, atom, `"x"`, nil); len(got) != 0 {
		t.Errorf("atom reach via label = %v", got)
	}
}

func TestPathAcceptsEmpty(t *testing.T) {
	reg := NewRegistry()
	cases := []struct {
		expr string
		want bool
	}{
		{`"x"`, false},
		{`"x"*`, true},
		{`"x" . "y"`, false},
		{`"x"* . "y"*`, true},
		{`"x" | "y"*`, true},
	}
	for _, c := range cases {
		n, err := compilePath(pathOf(t, c.expr), reg)
		if err != nil {
			t.Fatal(err)
		}
		if n.acceptsEmpty() != c.want {
			t.Errorf("%s acceptsEmpty = %v, want %v", c.expr, !c.want, c.want)
		}
	}
}

func TestPathMatches(t *testing.T) {
	g, n := chainGraph()
	nfa, err := compilePath(pathOf(t, `"x" . "y"`), NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !nfa.matches(g, graph.NodeValue(n[0]), graph.NodeValue(n[2])) {
		t.Error("a -x.y-> c should match")
	}
	if nfa.matches(g, graph.NodeValue(n[0]), graph.NodeValue(n[3])) {
		t.Error("a -x.y-> d should not match")
	}
}
