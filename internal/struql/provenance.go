// Page provenance: which source objects, attributes and binding
// tuples each constructed node came from. The paper's Skolem-function
// semantics make this natural — every output node is F(args) for
// source arguments — and recording it during construction answers
// "why does this page exist and what does it depend on" exactly, the
// same dependency the incremental rebuilder acts on.
package struql

import (
	"sort"
	"strings"
	"sync"

	"strudel/internal/graph"
)

// SourceRef names one data-graph object a constructed node consumed.
type SourceRef struct {
	OID  graph.OID `json:"oid"`
	Name string    `json:"name,omitempty"`
}

// NodeProvenance is the recorded derivation of one output node: the
// Skolem function that created it, how many binding tuples touched it,
// a sample of those tuples, the source objects its bindings ranged
// over, and the attribute labels its block's conditions read.
type NodeProvenance struct {
	Name       string      `json:"name"`
	Func       string      `json:"func,omitempty"`
	TupleCount int         `json:"tuple_count"`
	Tuples     []Binding   `json:"tuples,omitempty"`
	Sources    []SourceRef `json:"sources,omitempty"`
	Attrs      []string    `json:"attrs,omitempty"`
}

// maxProvTuples bounds the per-node binding-tuple sample: enough to
// show why a page exists without retaining the whole binding relation.
const maxProvTuples = 8

// Provenance records, during one or more evaluations into the same
// output graph, the derivation of every constructed node. Set it on
// Options.Provenance. Safe for concurrent reads after evaluation;
// recording itself happens on the sequential construction stage.
type Provenance struct {
	mu         sync.Mutex
	nodes      map[graph.OID]*nodeProv
	blockAttrs map[*Block][]string
}

type nodeProv struct {
	name    string
	tuples  int
	sample  []Binding
	rowSeen map[string]struct{}
	sources map[graph.OID]string
	attrs   map[string]struct{}
}

// NewProvenance returns an empty recorder.
func NewProvenance() *Provenance {
	return &Provenance{
		nodes:      map[graph.OID]*nodeProv{},
		blockAttrs: map[*Block][]string{},
	}
}

// record notes that binding row r of block b touched output node id.
func (p *Provenance) record(ev *evaluator, b *Block, id graph.OID, r env) {
	p.mu.Lock()
	defer p.mu.Unlock()
	np, ok := p.nodes[id]
	if !ok {
		np = &nodeProv{
			name:    ev.out.NodeName(id),
			rowSeen: map[string]struct{}{},
			sources: map[graph.OID]string{},
			attrs:   map[string]struct{}{},
		}
		p.nodes[id] = np
	}
	key := rowKey(r)
	if _, dup := np.rowSeen[key]; !dup {
		np.rowSeen[key] = struct{}{}
		np.tuples++
		if len(np.sample) < maxProvTuples {
			t := make(Binding, len(r))
			for k, v := range r {
				t[k] = v
			}
			np.sample = append(np.sample, t)
		}
	}
	for name, v := range r {
		if v.IsNode() && ev.in.HasNode(v.OID()) {
			np.sources[v.OID()] = ev.in.NodeName(v.OID())
		}
		if ev.varKinds[name] == arcVar {
			if s, ok := v.AsString(); ok && s != "" {
				np.attrs[s] = struct{}{}
			}
		}
	}
	for _, a := range p.attrsOfLocked(b) {
		np.attrs[a] = struct{}{}
	}
}

// attrsOfLocked returns (memoizing) the literal attribute labels a
// block's conditions read. Caller holds p.mu.
func (p *Provenance) attrsOfLocked(b *Block) []string {
	if attrs, ok := p.blockAttrs[b]; ok {
		return attrs
	}
	seen := map[string]struct{}{}
	var walk func(c Condition)
	walk = func(c Condition) {
		switch c := c.(type) {
		case *EdgeCond:
			if c.Label.Lit != "" {
				seen[c.Label.Lit] = struct{}{}
			}
		case *NotCond:
			walk(c.Inner)
		}
	}
	for _, c := range b.Where {
		walk(c)
	}
	attrs := make([]string, 0, len(seen))
	for a := range seen {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	p.blockAttrs[b] = attrs
	return attrs
}

// Node returns the provenance record of one output node.
func (p *Provenance) Node(id graph.OID) (*NodeProvenance, bool) {
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	np, ok := p.nodes[id]
	if !ok {
		return nil, false
	}
	out := &NodeProvenance{
		Name:       np.name,
		Func:       skolemFuncOf(np.name),
		TupleCount: np.tuples,
		Tuples:     append([]Binding(nil), np.sample...),
	}
	for oid, name := range np.sources {
		out.Sources = append(out.Sources, SourceRef{OID: oid, Name: name})
	}
	sort.Slice(out.Sources, func(i, j int) bool {
		a, b := out.Sources[i], out.Sources[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.OID < b.OID
	})
	for a := range np.attrs {
		out.Attrs = append(out.Attrs, a)
	}
	sort.Strings(out.Attrs)
	return out, true
}

// Nodes returns the recorded output-node OIDs in ascending order.
func (p *Provenance) Nodes() []graph.OID {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]graph.OID, 0, len(p.nodes))
	for id := range p.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// skolemFuncOf extracts the Skolem function from a symbolic node name:
// "YearPage(1997)" → "YearPage"; names without an application form
// return "".
func skolemFuncOf(name string) string {
	if i := strings.IndexByte(name, '('); i > 0 {
		return name[:i]
	}
	return ""
}
