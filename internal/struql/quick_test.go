package struql

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

// randomData builds a random publication-ish graph per seed.
func randomData(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("rnd")
	n := 5 + rng.Intn(15)
	var ids []graph.OID
	for i := 0; i < n; i++ {
		id := g.NewNode(fmt.Sprintf("o%d", i))
		ids = append(ids, id)
		g.AddToCollection("C", graph.NodeValue(id))
		for a := 0; a < 1+rng.Intn(3); a++ {
			label := []string{"x", "y", "z"}[rng.Intn(3)]
			if rng.Intn(3) == 0 {
				g.AddEdge(id, label, graph.NodeValue(ids[rng.Intn(len(ids))]))
			} else {
				g.AddEdge(id, label, graph.Int(int64(rng.Intn(5))))
			}
		}
	}
	return g
}

// TestQuickEvalDeterministic: evaluation of the same query over the
// same graph produces identical output graphs.
func TestQuickEvalDeterministic(t *testing.T) {
	q := MustParse(`
WHERE C(x), x -> l -> v
CREATE N(x)
LINK N(x) -> l -> v
COLLECT Out(N(x))`)
	prop := func(seed int64) bool {
		g := randomData(seed)
		r1, err1 := Eval(q, g, nil)
		r2, err2 := Eval(q, g, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Output.DumpString() == r2.Output.DumpString()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickCopyPreservesEdges: the copy query reproduces every edge of
// every collection member on its copy (Skolem copy is an isomorphism
// on the copied part).
func TestQuickCopyPreservesEdges(t *testing.T) {
	q := MustParse(`
WHERE C(x), x -> l -> v
CREATE N(x)
LINK N(x) -> l -> v`)
	prop := func(seed int64) bool {
		g := randomData(seed)
		res, err := Eval(q, g, nil)
		if err != nil {
			return false
		}
		for _, m := range g.Collection("C") {
			src := m.OID()
			if len(g.Out(src)) == 0 {
				continue
			}
			copyName := "N(" + g.NodeName(src) + ")"
			cp, ok := res.Output.NodeByName(copyName)
			if !ok {
				return false
			}
			// Every original edge appears on the copy (targets are
			// the original objects — copies link back into the data).
			for _, e := range g.Out(src) {
				found := false
				for _, ce := range res.Output.Out(cp) {
					if ce.Label == e.Label && ce.To == e.To {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickPathStarEqualsReachable: x -> * -> q from a source agrees
// with the graph's transitive closure (plus atoms).
func TestQuickPathStarEqualsReachable(t *testing.T) {
	q := MustParse(`WHERE Root(r), r -> * -> q COLLECT Reach(q)`)
	prop := func(seed int64) bool {
		g := randomData(seed)
		nodes := g.Nodes()
		start := nodes[int((seed%int64(len(nodes)))+int64(len(nodes)))%len(nodes)]
		g.AddToCollection("Root", graph.NodeValue(start))
		res, err := Eval(q, g, nil)
		if err != nil {
			return false
		}
		got := map[graph.Value]bool{}
		for _, v := range res.Output.Collection("Reach") {
			got[v] = true
		}
		// Expected: closure nodes plus atom targets of closure nodes.
		want := map[graph.Value]bool{}
		for id := range g.Reachable(start) {
			want[graph.NodeValue(id)] = true
			for _, e := range g.Out(id) {
				if !e.To.IsNode() {
					want[e.To] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for v := range want {
			if !got[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickBindingsAreSet: the binding relation never contains
// duplicate rows.
func TestQuickBindingsAreSet(t *testing.T) {
	conds := MustParse(`WHERE C(x), x -> l -> v COLLECT O(x)`).Root.Where
	prop := func(seed int64) bool {
		g := randomData(seed)
		rows, err := EvalBindings(g, nil, conds, nil)
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		for _, r := range rows {
			k := fmt.Sprint(r["x"], r["l"], r["v"])
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickQueryStringRoundTrip: parse(print(q)) is stable for the
// generated query family.
func TestQuickQueryStringRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		label := []string{"x", "y", "z"}[rng.Intn(3)]
		src := fmt.Sprintf(`
WHERE C(a), a -> %q -> b, b != %d
CREATE F(a), G(b)
LINK F(a) -> "t" -> G(b), G(b) -> %q -> b
COLLECT Out(F(a))`, label, rng.Intn(10), label)
		q1, err := Parse(src)
		if err != nil {
			return false
		}
		q2, err := Parse(q1.String())
		if err != nil {
			return false
		}
		return q1.String() == q2.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
