package struql

import (
	"fmt"
	"sort"
)

// DomainWarning reports a variable whose bindings depend on the active
// domain: it occurs only under negation, in predicate arguments, or in
// non-binding comparisons, so the evaluator must range it over all
// objects (or labels) of the graph. The paper notes that active-domain
// semantics is unsatisfactory and that range-restriction rules are the
// standard remedy ("the situation is similar to the domain independence
// issue in the relational calculus"); RangeCheck implements those
// rules as a static analysis.
type DomainWarning struct {
	Var  string
	Cond Condition
}

func (w DomainWarning) String() string {
	return fmt.Sprintf("variable %q is not range-restricted: it is bound only by %s, so it ranges over the active domain", w.Var, w.Cond)
}

// RangeCheck analyzes a query and returns one warning per variable
// per block that is not bound by a generating condition (collection
// membership, edge or path traversal, label-set membership, or an
// equality with a range-restricted side). The query remains executable
// — StruQL gives it a well-defined active-domain meaning — but the
// warning predicts a potentially explosive evaluation.
func RangeCheck(q *Query) []DomainWarning {
	return RangeCheckWith(q, nil)
}

// RangeCheckWith refines RangeCheck with knowledge of which names are
// collections of the intended input graph. Name(x) conditions over
// collections are generators; over external predicates they are
// filters and do not range-restrict x. A nil isCollection treats every
// name as a collection (never a false positive for real collections).
func RangeCheckWith(q *Query, isCollection func(string) bool) []DomainWarning {
	var out []DomainWarning
	a := &domainAnalysis{isCollection: isCollection}
	a.checkBlockDomains(q.Root, map[string]bool{}, &out)
	return out
}

type domainAnalysis struct {
	isCollection func(string) bool
}

func (a *domainAnalysis) checkBlockDomains(b *Block, inherited map[string]bool, out *[]DomainWarning) {
	safe := copySet(inherited)
	// Fixpoint: grow the safe set through generating conditions.
	for changed := true; changed; {
		changed = false
		for _, c := range b.Where {
			for _, v := range a.newlySafe(c, safe) {
				if !safe[v] {
					safe[v] = true
					changed = true
				}
			}
		}
	}
	// Any variable of the block not in the safe set is domain-bound;
	// attribute the warning to the first condition mentioning it.
	reported := map[string]bool{}
	for _, c := range b.Where {
		vm := map[string]varKind{}
		c.vars(vm)
		names := make([]string, 0, len(vm))
		for v := range vm {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			if !safe[v] && !reported[v] {
				reported[v] = true
				*out = append(*out, DomainWarning{Var: v, Cond: c})
			}
		}
	}
	// Children inherit everything this block binds (safe or not —
	// by execution time the parent will have materialized them).
	childBound := copySet(safe)
	for _, c := range b.Where {
		vm := map[string]varKind{}
		c.vars(vm)
		for v := range vm {
			childBound[v] = true
		}
	}
	for _, ch := range b.Children {
		a.checkBlockDomains(ch, childBound, out)
	}
}

// newlySafe returns the variables a condition can bind without
// consulting the active domain, given the currently safe set.
func (a *domainAnalysis) newlySafe(c Condition, safe map[string]bool) []string {
	termSafe := func(t Term) bool { return !t.IsVar() || safe[t.Var] }
	var out []string
	switch c := c.(type) {
	case *MembershipCond:
		// Collection scans generate; external predicates filter.
		// Without collection knowledge the name is ambiguous and we
		// assume a collection (never a false positive for real ones).
		if c.Arg.IsVar() && (a.isCollection == nil || a.isCollection(c.Collection)) {
			out = append(out, c.Arg.Var)
		}
	case *EdgeCond:
		// Edge conditions range over the graph's edges: both
		// endpoints and the arc variable are range-restricted.
		if c.From.IsVar() {
			out = append(out, c.From.Var)
		}
		if c.To.IsVar() {
			out = append(out, c.To.Var)
		}
		if c.Label.Var != "" {
			out = append(out, c.Label.Var)
		}
	case *PathCond:
		if c.From.IsVar() {
			out = append(out, c.From.Var)
		}
		if c.To.IsVar() {
			out = append(out, c.To.Var)
		}
	case *InSetCond:
		out = append(out, c.Var)
	case *CompareCond:
		// Equality propagates restriction across sides.
		if c.Op == OpEq {
			if termSafe(c.Left) && c.Right.IsVar() {
				out = append(out, c.Right.Var)
			}
			if termSafe(c.Right) && c.Left.IsVar() {
				out = append(out, c.Left.Var)
			}
		}
	case *NotCond, *PredCond:
		// Never generate.
	}
	return out
}
