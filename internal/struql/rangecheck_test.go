package struql

import (
	"strings"
	"testing"
)

func TestRangeCheckCleanQueries(t *testing.T) {
	clean := []string{
		`WHERE C(x), x -> l -> v COLLECT Out(x)`,
		`WHERE C(x), x -> * -> y COLLECT Out(y)`,
		`WHERE C(x), x -> "year" -> y, y = z COLLECT Out(z)`,
		`WHERE C(x), not(x -> "img" -> v2), x -> "a" -> v2 COLLECT Out(x)`,
		`WHERE x -> l -> v, l in {"a","b"} COLLECT Out(v)`,
	}
	for _, src := range clean {
		q := MustParse(src)
		if ws := RangeCheck(q); len(ws) != 0 {
			t.Errorf("%s: unexpected warnings %v", src, ws)
		}
	}
}

func TestRangeCheckComplementQuery(t *testing.T) {
	// The paper's complement query is the canonical domain-dependent
	// query: all three variables range over the active domain.
	q := MustParse(`
WHERE not(p -> l -> q)
CREATE F(p), F(q)
LINK F(p) -> l -> F(q)`)
	ws := RangeCheck(q)
	if len(ws) != 3 {
		t.Fatalf("warnings = %v", ws)
	}
	vars := map[string]bool{}
	for _, w := range ws {
		vars[w.Var] = true
		if !strings.Contains(w.String(), "active domain") {
			t.Errorf("warning text: %s", w)
		}
	}
	for _, v := range []string{"p", "l", "q"} {
		if !vars[v] {
			t.Errorf("missing warning for %q", v)
		}
	}
}

func TestRangeCheckNonEqComparison(t *testing.T) {
	q := MustParse(`WHERE C(x), x -> "year" -> y, z < y COLLECT Out(z)`)
	ws := RangeCheck(q)
	if len(ws) != 1 || ws[0].Var != "z" {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestRangeCheckPredicateOnlyVar(t *testing.T) {
	q := MustParse(`WHERE isPostScript(v) COLLECT Out(v)`)
	// Without collection knowledge the name is assumed a collection.
	if ws := RangeCheck(q); len(ws) != 0 {
		t.Fatalf("default warnings = %v", ws)
	}
	// With collection knowledge the predicate does not restrict v.
	ws := RangeCheckWith(q, func(string) bool { return false })
	if len(ws) != 1 || ws[0].Var != "v" {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestRangeCheckChildInheritsParentBindings(t *testing.T) {
	// The child's y < x comparison is fine: x is bound by the parent.
	q := MustParse(`
WHERE C(x)
CREATE F(x)
{ WHERE x -> "v" -> y, y != x COLLECT Out(y) }`)
	if ws := RangeCheck(q); len(ws) != 0 {
		t.Errorf("warnings = %v", ws)
	}
}

func TestRangeCheckEqualityPropagation(t *testing.T) {
	// z is restricted transitively: z = y, y from an edge.
	q := MustParse(`WHERE C(x), x -> "a" -> y, z = y, w = z COLLECT Out(w)`)
	if ws := RangeCheck(q); len(ws) != 0 {
		t.Errorf("warnings = %v", ws)
	}
}
