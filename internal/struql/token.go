// Package struql implements StruQL (Site TRansformation Und Query
// Language), STRUDEL's declarative query and restructuring language
// for semistructured data (paper Sec. 3). A query names an input
// graph, gives one block of where / create / link / collect clauses
// (with nested sub-blocks whose where conditions are conjoined with
// their ancestors'), and names an output graph:
//
//	INPUT BIBTEX
//	CREATE RootPage(), AbstractsPage()
//	LINK   RootPage() -> "AbstractsPage" -> AbstractsPage()
//	WHERE  Publications(x), x -> l -> v
//	CREATE PaperPresentation(x), AbstractPage(x)
//	LINK   AbstractPage(x) -> l -> v
//	{ WHERE l = "year" CREATE YearPage(v) ... }
//	OUTPUT HomePage
//
// The semantics are two-stage: the query stage produces all bindings
// of node and arc variables satisfying the where conditions; the
// construction stage builds a new graph from that relation using
// Skolem functions for new object identities.
package struql

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tInt
	tFloat
	tArrow  // ->
	tLBrace // {
	tRBrace // }
	tLParen // (
	tRParen // )
	tComma  // ,
	tStar   // *
	tDot    // .
	tBar    // |
	tEq     // =
	tNeq    // !=
	tLt     // <
	tLe     // <=
	tGt     // >
	tGe     // >=
)

func (k tokKind) String() string {
	switch k {
	case tEOF:
		return "end of query"
	case tIdent:
		return "identifier"
	case tString:
		return "string"
	case tInt:
		return "integer"
	case tFloat:
		return "float"
	case tArrow:
		return "'->'"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tComma:
		return "','"
	case tStar:
		return "'*'"
	case tDot:
		return "'.'"
	case tBar:
		return "'|'"
	case tEq:
		return "'='"
	case tNeq:
		return "'!='"
	case tLt:
		return "'<'"
	case tLe:
		return "'<='"
	case tGt:
		return "'>'"
	case tGe:
		return "'>='"
	default:
		return "token"
	}
}

type tok struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("struql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (tok, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return tok{kind: tEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "->":
		l.pos += 2
		return tok{kind: tArrow, text: "->", line: l.line}, nil
	case two == "!=":
		l.pos += 2
		return tok{kind: tNeq, text: "!=", line: l.line}, nil
	case two == "<=":
		l.pos += 2
		return tok{kind: tLe, text: "<=", line: l.line}, nil
	case two == ">=":
		l.pos += 2
		return tok{kind: tGe, text: ">=", line: l.line}, nil
	}
	switch c {
	case '{':
		l.pos++
		return tok{kind: tLBrace, text: "{", line: l.line}, nil
	case '}':
		l.pos++
		return tok{kind: tRBrace, text: "}", line: l.line}, nil
	case '(':
		l.pos++
		return tok{kind: tLParen, text: "(", line: l.line}, nil
	case ')':
		l.pos++
		return tok{kind: tRParen, text: ")", line: l.line}, nil
	case ',':
		l.pos++
		return tok{kind: tComma, text: ",", line: l.line}, nil
	case '*':
		l.pos++
		return tok{kind: tStar, text: "*", line: l.line}, nil
	case '.':
		l.pos++
		return tok{kind: tDot, text: ".", line: l.line}, nil
	case '|':
		l.pos++
		return tok{kind: tBar, text: "|", line: l.line}, nil
	case '=':
		l.pos++
		return tok{kind: tEq, text: "=", line: l.line}, nil
	case '<':
		l.pos++
		return tok{kind: tLt, text: "<", line: l.line}, nil
	case '>':
		l.pos++
		return tok{kind: tGt, text: ">", line: l.line}, nil
	case '"':
		return l.scanString()
	}
	if c == '-' || c >= '0' && c <= '9' {
		return l.scanNumber()
	}
	// Decode the rune the same way scanIdent will: a Latin-1 byte that
	// is not valid UTF-8 must be rejected here, or scanIdent would
	// make no progress.
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); r == '_' || unicode.IsLetter(r) {
		return l.scanIdent(), nil
	}
	return tok{}, l.errf("unexpected character %q", c)
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

// scanString scans a double-quoted literal and decodes it with the
// full Go escape set (strconv.Unquote), matching the %q rendering the
// canonical query printer emits.
func (l *lexer) scanString() (tok, error) {
	start := l.line
	begin := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '"':
			l.pos++
			text, err := strconv.Unquote(l.src[begin:l.pos])
			if err != nil {
				return tok{}, l.errf("bad string literal %s: unknown escape or malformed quoting", l.src[begin:l.pos])
			}
			return tok{kind: tString, text: text, line: start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return tok{}, l.errf("unterminated escape")
			}
			l.pos += 2
		case '\n':
			return tok{}, l.errf("newline in string literal")
		default:
			l.pos++
		}
	}
	return tok{}, l.errf("unterminated string literal")
}

func (l *lexer) scanNumber() (tok, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
		digits++
	}
	if digits == 0 {
		return tok{}, l.errf("malformed number")
	}
	kind := tInt
	// A '.' is a concatenation operator unless followed by a digit.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		kind = tFloat
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	return tok{kind: kind, text: l.src[start:l.pos], line: l.line}, nil
}

func (l *lexer) scanIdent() tok {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			break
		}
		l.pos += size
	}
	return tok{kind: tIdent, text: l.src[start:l.pos], line: l.line}
}
