// Structured access logging: one slog line per served request, in the
// same text schema every other layer logs in (see NewLogger), so an
// access line, an error line and a trace span of the same request all
// correlate on request_id — and on trace_id when the request was
// sampled.
package telemetry

import (
	"io"
	"log/slog"
	"time"
)

// AccessEntry is one served request, as the access log records it.
type AccessEntry struct {
	// Mode is the serving mode ("static", "dynamic").
	Mode string
	// Method and Path identify the request.
	Method, Path string
	// Status is the response status code; Bytes the body bytes written.
	Status int
	Bytes  int64
	// Duration is the wall time spent serving.
	Duration time.Duration
	// RequestID is the correlation ID assigned by the instrumentation
	// middleware; TraceID is the sampled request trace's ID ("" when
	// the request was not sampled).
	RequestID string
	TraceID   string
	// BuildID names the build the response was served from ("" when
	// the serving layer has no build-plane wiring) — the cross-plane
	// correlation key into the build ledger.
	BuildID string
}

// AccessLogger writes one structured line per request. A nil
// *AccessLogger is a valid no-op writer, so serving code can hold one
// unconditionally.
type AccessLogger struct {
	l *slog.Logger
}

// NewAccessLogger writes access lines to w in the shared slog text
// schema.
func NewAccessLogger(w io.Writer) *AccessLogger {
	return &AccessLogger{l: NewLogger(w)}
}

// NewAccessLoggerWith reuses an existing slog.Logger (e.g. the serving
// process's own), so access lines interleave with the rest of the log.
func NewAccessLoggerWith(l *slog.Logger) *AccessLogger {
	if l == nil {
		return nil
	}
	return &AccessLogger{l: l}
}

// Log writes one access line. Duration is logged in milliseconds
// (duration_ms) so lines are grep-able and plot-able without unit
// parsing.
func (a *AccessLogger) Log(e AccessEntry) {
	if a == nil || a.l == nil {
		return
	}
	attrs := []any{
		"mode", e.Mode,
		"method", e.Method,
		"path", e.Path,
		"status", e.Status,
		"bytes", e.Bytes,
		"duration_ms", float64(e.Duration) / float64(time.Millisecond),
		"request_id", e.RequestID,
	}
	if e.TraceID != "" {
		attrs = append(attrs, "trace_id", e.TraceID)
	}
	if e.BuildID != "" {
		attrs = append(attrs, "build_id", e.BuildID)
	}
	a.l.Info("access", attrs...)
}
