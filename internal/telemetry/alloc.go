package telemetry

import "runtime/metrics"

// allocSample is reused per call; runtime/metrics.Read fills values
// in place and the read itself is a few microseconds with no
// stop-the-world, unlike runtime.ReadMemStats — cheap enough to
// sample at build-phase boundaries.
var allocSampleName = "/gc/heap/allocs:bytes"

// AllocBytes returns the process-wide cumulative heap-allocation byte
// counter. Differences between two reads bound the allocation cost of
// the code in between — polluted by whatever else the process did
// concurrently, so treat deltas as profiles, not accounting. Returns
// 0 if the runtime does not expose the metric.
func AllocBytes() uint64 {
	s := []metrics.Sample{{Name: allocSampleName}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
