// Chrome trace-event export: a Trace's span tree serialized in the
// trace-event JSON format that chrome://tracing and Perfetto load, so
// a build's timeline can be inspected in a real trace viewer instead
// of the text Summary. Spans become "X" (complete) events; span events
// become "i" (instant) events; process and thread names are emitted as
// "M" (metadata) events.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the traceEvents array. Field names
// follow the trace-event format specification; ts and dur are
// microseconds relative to the trace start.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// chromePid is the constant process id of exported traces: the trace
// describes one build of one process.
const chromePid = 1

// WriteChrome serializes the trace in Chrome trace-event JSON. Sibling
// spans that overlap in time (concurrent query evaluation, say) are
// placed on distinct thread lanes so the viewer draws them side by
// side; non-overlapping siblings share their parent's lane. Open spans
// are rendered as if they ended now.
func (t *Trace) WriteChrome(w io.Writer) error {
	base := t.root.start
	now := time.Now()
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "strudel " + t.root.Name},
	})
	nextTid := 0
	var place func(s *Span, tid int)
	place = func(s *Span, tid int) {
		st := spanTimes(s, now)
		dur := st.dur
		args := map[string]any{}
		for _, a := range s.Attrs() {
			args[a.Key] = a.Value
		}
		ev := chromeEvent{
			Name: s.Name, Phase: "X",
			Ts: usSince(base, s.start), Dur: &dur,
			Pid: chromePid, Tid: tid, Args: args,
		}
		if len(args) == 0 {
			ev.Args = nil
		}
		out.TraceEvents = append(out.TraceEvents, ev)
		for _, e := range s.Events() {
			eargs := map[string]any{}
			for _, a := range e.Attrs {
				eargs[a.Key] = a.Value
			}
			iev := chromeEvent{
				Name: e.Name, Phase: "i",
				Ts: usSince(base, e.Time), Pid: chromePid, Tid: tid,
				Scope: "t", Args: eargs,
			}
			if len(eargs) == 0 {
				iev.Args = nil
			}
			out.TraceEvents = append(out.TraceEvents, iev)
		}
		children := s.Children()
		sort.SliceStable(children, func(i, j int) bool {
			return children[i].start.Before(children[j].start)
		})
		// Greedy lane assignment: a child reuses the first lane whose
		// previous occupant ended before the child started, preferring
		// the parent's own lane; otherwise it opens a fresh lane.
		type lane struct {
			tid int
			end time.Time
		}
		lanes := []lane{{tid: tid, end: s.start}}
		for _, c := range children {
			ct := spanTimes(c, now)
			placed := -1
			for i := range lanes {
				if !lanes[i].end.After(c.start) {
					placed = i
					break
				}
			}
			if placed < 0 {
				nextTid++
				lanes = append(lanes, lane{tid: nextTid})
				placed = len(lanes) - 1
			}
			lanes[placed].end = ct.end
			place(c, lanes[placed].tid)
		}
	}
	place(t.root, 0)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

type spanTime struct {
	end time.Time
	dur float64 // microseconds
}

// spanTimes resolves a span's end and duration, closing open spans at
// now for display purposes.
func spanTimes(s *Span, now time.Time) spanTime {
	s.mu.Lock()
	done, end := s.done, s.end
	s.mu.Unlock()
	if !done {
		end = now
	}
	if end.Before(s.start) {
		end = s.start
	}
	return spanTime{end: end, dur: float64(end.Sub(s.start)) / float64(time.Microsecond)}
}

func usSince(base, t time.Time) float64 {
	if t.Before(base) {
		return 0
	}
	return float64(t.Sub(base)) / float64(time.Microsecond)
}
