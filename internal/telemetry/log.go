// Structured logging support: a shared slog construction so every
// layer logs the same text schema (time, level, msg, then key/value
// attributes), and process-unique correlation IDs that tie log lines
// to traces — every line of one build carries its build_id, every line
// of one request its request_id.
package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// NewLogger returns a text-format slog.Logger writing to w. One
// constructor keeps the log schema identical across the CLI, the
// server and tests.
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil))
}

var (
	idCounter atomic.Uint64
	// idEpoch distinguishes processes: two strudel invocations a
	// second apart never collide on ids even though the counter
	// restarts at zero.
	idEpoch = uint64(time.Now().UnixNano()) & 0xffffff
)

// NewID returns a short process-unique correlation identifier with the
// given prefix, e.g. "build-3fa2c1-000007". IDs are cheap (one atomic
// add) and safe for concurrent use.
func NewID(prefix string) string {
	return fmt.Sprintf("%s-%06x-%06d", prefix, idEpoch, idCounter.Add(1))
}
