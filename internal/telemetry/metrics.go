// Package telemetry is STRUDEL's zero-dependency observability layer:
// an atomic metrics registry with Prometheus-text exposition, and
// lightweight span tracing for build pipelines. The paper evaluates
// STRUDEL along axes — click time of dynamically computed pages, query
// evaluation cost under different plans, full vs. incremental
// regeneration cost (Secs. 2.4 and 6) — that are observable only with
// instrumentation; this package is the measurement substrate every
// layer of the pipeline reports into.
//
// Metrics are identified by a name plus an optional set of label
// pairs, exactly as in the Prometheus exposition format:
//
//	reg := telemetry.NewRegistry()
//	hits := reg.Counter("strudel_dynamic_cache_hits_total",
//		"Dynamic page-cache hits.")
//	lat := reg.Histogram("strudel_http_request_seconds",
//		"HTTP request latency.", telemetry.DefBuckets, "mode", "static")
//	hits.Inc()
//	lat.Observe(time.Since(t0).Seconds())
//
// All metric operations are lock-free atomics; acquiring a handle once
// and reusing it keeps the hot path to a single atomic add.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout: exponential-ish
// upper bounds in seconds from 0.5ms to 10s, chosen so that both
// in-memory static serving (tens of microseconds) and click-time query
// evaluation over large data graphs (milliseconds to seconds) resolve
// into distinct buckets.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RatioBuckets is the bucket layout for dimensionless ratios (e.g. the
// optimizer's actual/estimated row counts): 1.0 sits on a boundary so
// under- and over-estimation separate cleanly.
var RatioBuckets = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 4, 10, 100}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-style buckets
// and tracks their sum, mirroring a Prometheus histogram.
type Histogram struct {
	upper   []float64 // sorted upper bounds, excluding +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// Observe records one value. NaN observations are rejected: a NaN
// would poison the running sum forever (NaN+x = NaN) and render the
// whole series useless, so it is dropped rather than recorded.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound contains v; past the last bound
	// only count/sum record it (the +Inf bucket is implicit).
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one labeled series inside a family.
type metric struct {
	labels string // canonical rendering, e.g. `mode="static"`; "" for none
	c      *Counter
	g      *Gauge
	gf     func() float64 // scrape-time gauge; set instead of g
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	series          map[string]*metric
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// canonLabels renders "k1","v1","k2","v2"... sorted by key. Panics on
// an odd-length pair list (a programming error, like a bad Printf verb).
func canonLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("telemetry: odd label pair list")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	parts := make([]string, len(kvs))
	for i, p := range kvs {
		parts[i] = p.k + `="` + escapeLabel(p.v) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getFamily returns (creating if needed) the family, checking that the
// type is consistent with prior registrations of the same name.
func (r *Registry) getFamily(name, help, typ string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			series: map[string]*metric{}}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels string) (*metric, bool) {
	m, ok := f.series[labels]
	if !ok {
		m = &metric{labels: labels}
		f.series[labels] = m
	}
	return m, ok
}

// Counter returns (registering on first use) the counter series for
// name and label pairs. The series appears in the exposition
// immediately, with value 0.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "counter", nil)
	m, ok := f.get(canonLabels(labelPairs))
	if !ok {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns (registering on first use) the gauge series.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "gauge", nil)
	m, _ := f.get(canonLabels(labelPairs))
	if m.g == nil {
		m.g = &Gauge{} // ignored at scrape time if a GaugeFunc is set
	}
	return m.g
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// scrape time. Derived observables — a hit *ratio*, a cache occupancy
// percentage — are read this way instead of being pushed on every
// request, so the hot path never pays for them. Re-registering the
// same series replaces its function; fn must be safe for concurrent
// calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "gauge", nil)
	m, _ := f.get(canonLabels(labelPairs))
	m.g, m.gf = nil, fn
}

// Histogram returns (registering on first use) the histogram series.
// buckets are upper bounds in ascending order (the +Inf bucket is
// implicit); nil means DefBuckets. All series of one family share the
// first registration's layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getFamily(name, help, "histogram", buckets)
	m, ok := f.get(canonLabels(labelPairs))
	if !ok {
		h := &Histogram{upper: f.buckets}
		h.buckets = make([]atomic.Uint64, len(f.buckets))
		m.h = h
	}
	return m.h
}

// Info installs an info-style gauge (constant value 1, identity in
// the labels) with *replace* semantics: the whole family is reset to
// exactly this one series. That bounds cardinality for identities
// that change over the process lifetime — e.g. the live build ID —
// where the Prometheus-idiomatic one-series-per-identity pattern
// would grow without limit. Note the replacement is family-wide: two
// writers sharing one family clobber each other, so Info families
// must have a single owner.
func (r *Registry) Info(name, help string, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "gauge", nil)
	f.series = map[string]*metric{}
	m, _ := f.get(canonLabels(labelPairs))
	g := &Gauge{}
	g.Set(1)
	m.g = g
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4). Output is fully deterministic: families are
// sorted by name and series by their canonical label rendering, so
// two scrapes of the same state are byte-identical regardless of
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	// Snapshot families AND series pointers under the lock: the series
	// maps keep growing concurrently (family creation is lazy), so they
	// must not be read during rendering.
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	series := make([][]*metric, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
		ms := make([]*metric, 0, len(fams[i].series))
		for _, m := range fams[i].series {
			ms = append(ms, m)
		}
		sort.Slice(ms, func(a, b int) bool { return ms[a].labels < ms[b].labels })
		series[i] = ms
	}
	r.mu.Unlock()

	for fi, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range series[fi] {
			switch f.typ {
			case "counter":
				fmt.Fprintf(w, "%s%s %d\n", f.name, braced(m.labels), m.c.Value())
			case "gauge":
				v := 0.0
				if m.gf != nil {
					v = m.gf()
				} else if m.g != nil {
					v = m.g.Value()
				}
				fmt.Fprintf(w, "%s%s %s\n", f.name, braced(m.labels), formatFloat(v))
			case "histogram":
				writeHistogram(w, f, m)
			}
		}
	}
}

func writeHistogram(w io.Writer, f *family, m *metric) {
	cum := uint64(0)
	for i, ub := range f.buckets {
		cum += m.h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			braced(withLE(m.labels, formatFloat(ub))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		braced(withLE(m.labels, "+Inf")), m.h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(m.labels), formatFloat(m.h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(m.labels), m.h.Count())
}

func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler serves the registry in Prometheus text format (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
