package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// goldenExposition is the exact exposition for the registry built by
// fillRegistry: families sorted by name, label sets sorted by their
// canonical rendering, label keys sorted within a set.
const goldenExposition = `# HELP a_gauge A gauge.
# TYPE a_gauge gauge
a_gauge 2.5
# HELP h_seconds H.
# TYPE h_seconds histogram
h_seconds_bucket{mode="x",le="1"} 1
h_seconds_bucket{mode="x",le="2"} 1
h_seconds_bucket{mode="x",le="+Inf"} 2
h_seconds_sum{mode="x"} 3.5
h_seconds_count{mode="x"} 2
# HELP req_total Requests.
# TYPE req_total counter
req_total{class="2xx",mode="static"} 3
req_total{class="5xx",mode="dynamic"} 1
`

func fillRegistry(reg *Registry, reversed bool) {
	steps := []func(){
		func() { reg.Counter("req_total", "Requests.", "mode", "static", "class", "2xx").Add(3) },
		func() { reg.Counter("req_total", "Requests.", "class", "5xx", "mode", "dynamic").Inc() },
		func() { reg.Gauge("a_gauge", "A gauge.").Set(2.5) },
		func() {
			h := reg.Histogram("h_seconds", "H.", []float64{1, 2}, "mode", "x")
			h.Observe(0.5)
			h.Observe(3)
		},
	}
	if reversed {
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
	}
	for _, step := range steps {
		step()
	}
}

// TestWritePrometheusGolden pins the exposition byte for byte: two
// registries populated in opposite orders must both render the golden
// output, and a second scrape must be identical to the first.
func TestWritePrometheusGolden(t *testing.T) {
	for _, reversed := range []bool{false, true} {
		reg := NewRegistry()
		fillRegistry(reg, reversed)
		var sb strings.Builder
		reg.WritePrometheus(&sb)
		if sb.String() != goldenExposition {
			t.Errorf("reversed=%v: exposition mismatch:\n got:\n%s\nwant:\n%s",
				reversed, sb.String(), goldenExposition)
		}
		var sb2 strings.Builder
		reg.WritePrometheus(&sb2)
		if sb.String() != sb2.String() {
			t.Errorf("reversed=%v: two scrapes of the same state differ", reversed)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("e_seconds", "E.", []float64{1})

	// NaN would poison the running sum forever; it must be dropped.
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Errorf("NaN was counted: count = %d", h.Count())
	}
	if h.Sum() != 0 {
		t.Errorf("NaN reached the sum: %v", h.Sum())
	}

	// +Inf lands only in the implicit +Inf bucket; a value below every
	// bound lands in the first.
	h.Observe(math.Inf(1))
	h.Observe(-5)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if !math.IsInf(h.Sum(), 1) {
		t.Errorf("sum = %v, want +Inf", h.Sum())
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`e_seconds_bucket{le="1"} 1`,
		`e_seconds_bucket{le="+Inf"} 2`,
		"e_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSpanConcurrentObservability hammers one trace with concurrent
// child creation, attribute and event recording, and finishes, while
// Chrome and summary exports run against the live trace. Under -race
// this validates the span locking; afterwards the export must still be
// valid JSON.
func TestSpanConcurrentObservability(t *testing.T) {
	tr := NewTrace("t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := tr.Root().Child("c")
				c.SetAttr("worker", w)
				c.SetAttr("worker", w+1) // replace path
				c.AddEvent("tick", "j", j)
				c.Finish()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			var b bytes.Buffer
			if err := tr.WriteChrome(&b); err != nil {
				t.Errorf("WriteChrome on live trace: %v", err)
				return
			}
			var sb strings.Builder
			tr.WriteSummary(&sb)
		}
	}()
	wg.Wait()
	<-done
	tr.Finish()
	if n := len(tr.Root().Children()); n != 400 {
		t.Fatalf("children = %d, want 400", n)
	}
	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(b.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
}

// TestWriteChromeFormat checks the trace-event JSON schema: the fields
// chrome://tracing and Perfetto require, instant-event scoping, span
// attributes as args, and distinct thread lanes for overlapping
// sibling spans.
func TestWriteChromeFormat(t *testing.T) {
	tr := NewTrace("build")
	tr.Root().SetAttr("site", "s")
	a := tr.Root().Child("a")
	a.AddEvent("violation", "err", "boom")
	b := tr.Root().Child("b") // starts while a is open: overlapping siblings
	a.Finish()
	b.Finish()
	tr.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    *float64       `json:"ts"`
			Dur   *float64       `json:"dur"`
			Pid   *int           `json:"pid"`
			Tid   *int           `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", out.DisplayTimeUnit)
	}
	tids := map[string]int{}
	sawMeta, sawInstant := false, false
	for _, ev := range out.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %q missing pid/tid", ev.Name)
		}
		switch ev.Phase {
		case "M":
			sawMeta = true
		case "X":
			if ev.Ts == nil || ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("complete event %q missing ts/dur", ev.Name)
			}
			tids[ev.Name] = *ev.Tid
		case "i":
			sawInstant = true
			if ev.Scope != "t" {
				t.Errorf("instant event %q scope = %q, want \"t\"", ev.Name, ev.Scope)
			}
			if ev.Name == "violation" && ev.Args["err"] != "boom" {
				t.Errorf("instant args = %v", ev.Args)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
		if ev.Phase == "X" && ev.Name == "build" && ev.Args["site"] != "s" {
			t.Errorf("root span args = %v, want site=s", ev.Args)
		}
	}
	if !sawMeta {
		t.Error("no metadata (process_name) event")
	}
	if !sawInstant {
		t.Error("no instant event for the span event")
	}
	if tids["a"] == tids["b"] {
		t.Errorf("overlapping siblings share lane tid=%d", tids["a"])
	}
	if tids["build"] != tids["a"] {
		t.Errorf("first child should inherit the parent lane: root %d, a %d",
			tids["build"], tids["a"])
	}
}

func TestNewIDUnique(t *testing.T) {
	const workers, each = 4, 1000
	ids := make(chan string, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ids <- NewID("x")
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "x-") {
			t.Fatalf("id %q missing prefix", id)
		}
	}
}

func TestLoggerSchema(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Info("built", "build_id", "build-1", "pages", 42)
	out := buf.String()
	for _, want := range []string{"level=INFO", "msg=built", "build_id=build-1", "pages=42"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
}
