// Request tracing: the build-trace Span tree applied to the serving
// plane. A RequestTracer samples one in every N requests, gives the
// sampled request a Trace whose root span rides the request context
// down through click-time query evaluation and rendering, and keeps a
// bounded ring of recently finished traces so /debug/ops (and the
// Chrome trace export, which works on these traces unchanged) can show
// where request time actually went without tracing — and paying for —
// every request.
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// spanCtxKey carries the active span in a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span, so layers below
// the HTTP handler (click-time page computation, ad-hoc query
// evaluation) can attach child spans to the request's trace.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by the context, or nil for
// an untraced (unsampled) request. The nil check is the sampling gate:
// unsampled requests pay one context lookup and nothing else.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan attaches a child span to the context's span, returning the
// child (nil when the context is untraced — Finish on a nil span via
// the returned func is a no-op) and a context carrying it.
func StartSpan(ctx context.Context, name string) (*Span, context.Context, func()) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil, ctx, func() {}
	}
	child := parent.Child(name)
	return child, ContextWithSpan(ctx, child), child.Finish
}

// RequestTracer samples request traces: 1 in every SampleEvery
// requests gets a full span tree, the rest are counted but untraced.
// Finished traces land in a fixed-size ring (newest overwrite oldest),
// so the memory cost of tracing is fixed regardless of traffic. Keep
// the ring small: retained span trees are live heap the garbage
// collector rescans on every cycle, so dozens of deep traces tax every
// request, traced or not.
type RequestTracer struct {
	every uint64

	total   atomic.Uint64
	sampled atomic.Uint64

	mu    sync.Mutex
	ring  []*Trace
	next  int
	count int
}

// NewRequestTracer samples one in sampleEvery requests (values below 1
// trace every request) and retains the keep most recent finished
// traces (values below 1 keep 8).
func NewRequestTracer(sampleEvery, keep int) *RequestTracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if keep < 1 {
		keep = 8
	}
	return &RequestTracer{every: uint64(sampleEvery), ring: make([]*Trace, keep)}
}

// Start counts a request and, when it falls on the sampling stride,
// returns a fresh trace (ID prefix "req") whose root span begins now;
// nil for unsampled requests.
func (t *RequestTracer) Start(name string) *Trace {
	n := t.total.Add(1)
	if (n-1)%t.every != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &Trace{root: &Span{Name: name, start: time.Now()}, ID: NewID("req")}
}

// Finish closes a sampled trace and retains it in the recent ring.
// A nil trace (unsampled request) is a no-op.
func (t *RequestTracer) Finish(tr *Trace) {
	if tr == nil {
		return
	}
	tr.Finish()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	}
}

// Recent returns the retained finished traces, oldest first.
func (t *RequestTracer) Recent() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, t.count)
	start := t.next - t.count
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[((start+i)%len(t.ring)+len(t.ring))%len(t.ring)])
	}
	return out
}

// Counts reports how many requests were seen and how many were sampled.
func (t *RequestTracer) Counts() (total, sampled uint64) {
	return t.total.Load(), t.sampled.Load()
}
