// Go runtime sampling and process identity metrics. Serving "millions
// of users" fails first in the runtime — goroutine leaks, heap growth,
// GC pauses eating the latency budget — so the serving plane samples
// the runtime into registry gauges, and every process exports a
// strudel_build_info series plus its start time so dashboards can
// compute uptime and correlate behaviour changes with deploys.
package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// processStart is captured at package initialization — close enough to
// process start for uptime arithmetic.
var processStart = time.Now()

// ProcessStart returns when this process initialized the telemetry
// package (its observable start time).
func ProcessStart() time.Time { return processStart }

// Version reports the main module's version from build info, or "dev"
// for local, uninstalled builds.
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "dev"
}

// RegisterBuildInfo registers the process-identity series:
//
//	strudel_build_info{version,goversion} 1
//	strudel_process_start_time_seconds    <unix time>
//
// The info-style constant gauge is the Prometheus idiom for exposing
// labels without cardinality risk (the value is always 1; dashboards
// join on it), and the start-time gauge is what uptime panels and
// deploy-correlation queries key on.
func RegisterBuildInfo(reg *Registry) {
	reg.Gauge("strudel_build_info",
		"Build information; constant 1 with version labels.",
		"version", Version(), "goversion", runtime.Version()).Set(1)
	reg.Gauge("strudel_process_start_time_seconds",
		"Unix time the process started, for uptime and deploy correlation.").
		Set(float64(processStart.UnixNano()) / 1e9)
}

// RuntimeStats is one sample of the Go runtime, JSON-shaped for
// /debug/ops.
type RuntimeStats struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	HeapObjects         uint64  `json:"heap_objects"`
	TotalAllocBytes     uint64  `json:"total_alloc_bytes"`
	NextGCBytes         uint64  `json:"next_gc_bytes"`
	GCCycles            uint32  `json:"gc_cycles"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	LastGCPauseSeconds  float64 `json:"last_gc_pause_seconds"`
}

// RuntimeSampler reads the runtime into gauges on demand or on an
// interval. Reading memory stats stops the world briefly, so the
// sampler is something to run every few seconds, not per request.
type RuntimeSampler struct {
	mu   sync.Mutex
	last RuntimeStats

	goroutines, heapAlloc, heapObjects *Gauge
	gcCycles, gcPauseTotal             *Gauge
}

// NewRuntimeSampler creates a sampler; with a non-nil registry each
// Sample also refreshes the runtime gauges.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	s := &RuntimeSampler{}
	if reg != nil {
		s.goroutines = reg.Gauge("strudel_go_goroutines",
			"Goroutines at the last runtime sample.")
		s.heapAlloc = reg.Gauge("strudel_go_heap_alloc_bytes",
			"Heap bytes allocated and in use at the last runtime sample.")
		s.heapObjects = reg.Gauge("strudel_go_heap_objects",
			"Live heap objects at the last runtime sample.")
		s.gcCycles = reg.Gauge("strudel_go_gc_cycles_total",
			"Completed GC cycles at the last runtime sample.")
		s.gcPauseTotal = reg.Gauge("strudel_go_gc_pause_seconds_total",
			"Cumulative GC stop-the-world pause at the last runtime sample.")
	}
	return s
}

// Sample reads the runtime now, refreshes the gauges, and returns the
// sample.
func (s *RuntimeSampler) Sample() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapObjects:         ms.HeapObjects,
		TotalAllocBytes:     ms.TotalAlloc,
		NextGCBytes:         ms.NextGC,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
	}
	if ms.NumGC > 0 {
		st.LastGCPauseSeconds = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
	s.mu.Lock()
	s.last = st
	s.mu.Unlock()
	if s.goroutines != nil {
		s.goroutines.Set(float64(st.Goroutines))
		s.heapAlloc.Set(float64(st.HeapAllocBytes))
		s.heapObjects.Set(float64(st.HeapObjects))
		s.gcCycles.Set(float64(st.GCCycles))
		s.gcPauseTotal.Set(st.GCPauseTotalSeconds)
	}
	return st
}

// Last returns the most recent sample without touching the runtime
// (zero value before the first Sample).
func (s *RuntimeSampler) Last() RuntimeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Run samples every interval until stop fires — the background loop
// that keeps the /metrics gauges fresh between /debug/ops snapshots
// (which sample on demand). interval <= 0 defaults to 10s.
func (s *RuntimeSampler) Run(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	s.Sample()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}
