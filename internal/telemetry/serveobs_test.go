package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel/internal/resilience"
)

func TestSpanContextRoundTrip(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context should carry no span")
	}
	root := &Span{Name: "req", start: time.Now()}
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFromContext(ctx) != root {
		t.Fatal("span did not round-trip through the context")
	}
	child, cctx, finish := StartSpan(ctx, "render")
	if child == nil || SpanFromContext(cctx) != child {
		t.Fatal("StartSpan should attach a child to the context")
	}
	finish()
	if kids := root.Children(); len(kids) != 1 || kids[0].Name != "render" {
		t.Fatalf("root children = %v", kids)
	}
	// Untraced context: StartSpan is a no-op with a safe finish func.
	none, nctx, fin := StartSpan(context.Background(), "x")
	if none != nil || SpanFromContext(nctx) != nil {
		t.Fatal("StartSpan on untraced context should stay untraced")
	}
	fin()
}

func TestRequestTracerSampling(t *testing.T) {
	tr := NewRequestTracer(4, 3)
	var sampled int
	for i := 0; i < 16; i++ {
		got := tr.Start(fmt.Sprintf("GET /p%d", i))
		if got != nil {
			sampled++
			if !strings.HasPrefix(got.ID, "req-") {
				t.Errorf("trace ID = %q, want req- prefix", got.ID)
			}
		}
		tr.Finish(got) // nil-safe for unsampled requests
	}
	if sampled != 4 {
		t.Errorf("sampled %d of 16 with stride 4, want 4", sampled)
	}
	total, s := tr.Counts()
	if total != 16 || s != 4 {
		t.Errorf("Counts() = %d, %d; want 16, 4", total, s)
	}
	// The ring keeps only the newest `keep` traces.
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("len(Recent()) = %d, want 3", len(recent))
	}
	if recent[2].Root().Name != "GET /p12" {
		t.Errorf("newest retained = %q, want GET /p12", recent[2].Root().Name)
	}
	for _, rt := range recent {
		if rt.Root().Duration() < 0 {
			t.Errorf("trace %s not finished", rt.ID)
		}
	}
}

func TestRequestTracerEveryRequest(t *testing.T) {
	tr := NewRequestTracer(0, 0) // sanitized to every request, keep 8
	for i := 0; i < 40; i++ {
		tr.Finish(tr.Start(fmt.Sprintf("GET /%d", i)))
	}
	recent := tr.Recent()
	if got := len(recent); got != 8 {
		t.Fatalf("ring kept %d, want 8", got)
	}
	// The fixed ring holds exactly the last 8 finished traces, oldest
	// first — newer traces overwrote the older slots.
	for i, got := range recent {
		if want := fmt.Sprintf("GET /%d", 32+i); got.Root().Name != want {
			t.Errorf("recent[%d] = %q, want %q", i, got.Root().Name, want)
		}
	}
}

func TestSLOWindowAndBurnRate(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(1_000_000, 0))
	// 30s window over 30 buckets → 1s resolution.
	slo := NewSLO(100*time.Millisecond, 0.9, 30*time.Second, clk)

	for i := 0; i < 8; i++ {
		slo.Observe(10*time.Millisecond, false) // good
	}
	slo.Observe(500*time.Millisecond, false) // slow
	slo.Observe(10*time.Millisecond, true)   // error

	snap := slo.Snapshot()
	if snap.Total != 10 || snap.Good != 8 || snap.Slow != 1 || snap.Errors != 1 {
		t.Fatalf("window = %+v", snap)
	}
	if snap.Compliance != 0.8 {
		t.Errorf("compliance = %v, want 0.8", snap.Compliance)
	}
	// Bad fraction 0.2 against a 0.1 budget → burn rate 2.
	if snap.BurnRate < 1.99 || snap.BurnRate > 2.01 {
		t.Errorf("burn rate = %v, want 2", snap.BurnRate)
	}

	// The window slides: after more than the window of silence, the old
	// observations age out and compliance recovers.
	clk.Advance(31 * time.Second)
	snap = slo.Snapshot()
	if snap.Total != 0 || snap.Compliance != 1 || snap.BurnRate != 0 {
		t.Errorf("after window slide: %+v", snap)
	}
	if snap.LifetimeTotal != 10 || snap.LifetimeBad != 2 {
		t.Errorf("lifetime = %d/%d, want 10/2", snap.LifetimeBad, snap.LifetimeTotal)
	}

	// New observations land in fresh buckets.
	slo.Observe(10*time.Millisecond, false)
	if snap = slo.Snapshot(); snap.Total != 1 || snap.Good != 1 {
		t.Errorf("post-slide window = %+v", snap)
	}
}

func TestSLOGauges(t *testing.T) {
	clk := resilience.NewFakeClock(time.Unix(1_000_000, 0))
	slo := NewSLO(100*time.Millisecond, 0.99, time.Minute, clk)
	reg := NewRegistry()
	slo.Instrument(reg)
	slo.Observe(10*time.Millisecond, false)
	slo.Observe(500*time.Millisecond, false)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "strudel_slo_compliance_ratio 0.5") {
		t.Errorf("compliance gauge missing:\n%s", out)
	}
	// 0.5 bad over a 0.01 budget ≈ 50, modulo float division.
	if burn := reg.Gauge("strudel_slo_burn_rate", "").Value(); burn < 49.9 || burn > 50.1 {
		t.Errorf("burn gauge = %v, want ≈50:\n%s", burn, out)
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	st := s.Sample()
	if st.Goroutines < 1 || st.HeapAllocBytes == 0 {
		t.Fatalf("implausible sample: %+v", st)
	}
	if last := s.Last(); last != st {
		t.Errorf("Last() = %+v, want the sample just taken", last)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, name := range []string{"strudel_go_goroutines", "strudel_go_heap_alloc_bytes",
		"strudel_go_heap_objects", "strudel_go_gc_cycles_total"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("gauge %s missing from exposition", name)
		}
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, `strudel_build_info{goversion="go`) ||
		!strings.Contains(out, `version="`) {
		t.Errorf("build info series missing:\n%s", out)
	}
	if !strings.Contains(out, "strudel_process_start_time_seconds") {
		t.Errorf("process start time missing:\n%s", out)
	}
	if ProcessStart().IsZero() || time.Since(ProcessStart()) < 0 {
		t.Errorf("ProcessStart() = %v", ProcessStart())
	}
}

func TestAccessLoggerSchema(t *testing.T) {
	var sb strings.Builder
	al := NewAccessLogger(&syncWriter{w: &sb})
	al.Log(AccessEntry{
		Mode: "static", Method: "GET", Path: "/a.html",
		Status: 200, Bytes: 17, Duration: 2500 * time.Microsecond,
		RequestID: "req-x-1", TraceID: "req-x-2",
	})
	al.Log(AccessEntry{Mode: "static", Method: "GET", Path: "/b.html",
		Status: 404, Duration: time.Millisecond, RequestID: "req-x-3"})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), sb.String())
	}
	for _, want := range []string{"msg=access", "mode=static", "method=GET",
		"path=/a.html", "status=200", "bytes=17", "duration_ms=2.5",
		"request_id=req-x-1", "trace_id=req-x-2"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line 1 missing %q: %s", want, lines[0])
		}
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("unsampled request should carry no trace_id: %s", lines[1])
	}
	// A nil logger is a safe no-op.
	var nilLogger *AccessLogger
	nilLogger.Log(AccessEntry{})
}

// syncWriter serializes writes (slog handlers already do, but the test
// builder is not otherwise protected).
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestRegistryConcurrentFamilies hammers family creation itself — many
// goroutines registering the same and distinct names across all three
// metric types, interleaved with scrapes — distinct from
// TestConcurrentMetrics, which exercises operations on existing
// handles. Run under -race this pins down the registry's family map
// locking.
func TestRegistryConcurrentFamilies(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Same family from every goroutine: first registration
				// wins, everyone shares the series.
				reg.Counter("shared_total", "shared").Inc()
				// Same family, per-goroutine series.
				reg.Counter("labeled_total", "labeled", "w", fmt.Sprint(w)).Inc()
				// Distinct families racing into the map.
				reg.Gauge(fmt.Sprintf("gauge_%d_%d", w, i%7), "g").Set(float64(i))
				reg.Histogram(fmt.Sprintf("hist_%d", i%5), "h", nil, "w", fmt.Sprint(w)).
					Observe(float64(i) / 100)
				if i%10 == 0 {
					var sb strings.Builder
					reg.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("shared_total", "shared").Value(); got != workers*50 {
		t.Errorf("shared counter = %d, want %d", got, workers*50)
	}
	for w := 0; w < workers; w++ {
		if got := reg.Counter("labeled_total", "labeled", "w", fmt.Sprint(w)).Value(); got != 50 {
			t.Errorf("labeled counter w=%d = %d, want 50", w, got)
		}
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "shared_total 800") {
		t.Errorf("exposition missing shared_total:\n%s", sb.String())
	}
}
