// SLO tracking: a latency objective ("99% of requests under 250ms")
// turned into a live error budget. Every request is classified good or
// bad (bad = server error or slower than the target); a sliding window
// of fixed-width buckets yields the recent compliance ratio and the
// burn rate — how fast the error budget is being spent, where 1.0
// means "exactly at budget" and anything above means the objective
// will be missed if the window's behaviour continues. Time comes from
// an injectable resilience.Clock so window arithmetic is testable
// without sleeps.
package telemetry

import (
	"sync"
	"time"

	"strudel/internal/resilience"
)

// sloBucket is one window slice. epoch identifies which slice of
// absolute time the bucket currently holds, so stale buckets from a
// previous lap of the ring are recognized and reset lazily.
type sloBucket struct {
	epoch  int64
	total  uint64
	errors uint64 // status >= 500
	slow   uint64 // latency above target (and not an error)
}

// sloBuckets is the ring size: the window is split this many ways, so
// the sliding window's resolution is window/sloBuckets.
const sloBuckets = 30

// SLO tracks one latency objective over a sliding window.
type SLO struct {
	target    time.Duration
	objective float64
	width     time.Duration // bucket width
	clock     resilience.Clock

	mu      sync.Mutex
	buckets [sloBuckets]sloBucket
	// lifetime totals, never windowed out.
	lifeTotal, lifeBad uint64

	// gauges are nil until Instrument.
	compliance, burn *Gauge
}

// NewSLO tracks "objective of requests complete within target, judged
// over window". objective outside (0,1) defaults to 0.99; window <= 0
// defaults to 5 minutes; a nil clock uses the wall clock.
func NewSLO(target time.Duration, objective float64, window time.Duration, clock resilience.Clock) *SLO {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	if clock == nil {
		clock = resilience.Real
	}
	return &SLO{
		target:    target,
		objective: objective,
		width:     window / sloBuckets,
		clock:     clock,
	}
}

// Target returns the latency objective.
func (s *SLO) Target() time.Duration { return s.target }

// Instrument publishes the live compliance ratio and burn rate as
// registry gauges (fixed cardinality: one series each). The gauges are
// refreshed on every Observe.
func (s *SLO) Instrument(reg *Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compliance = reg.Gauge("strudel_slo_compliance_ratio",
		"Fraction of requests in the sliding window meeting the latency objective.")
	s.compliance.Set(1)
	s.burn = reg.Gauge("strudel_slo_burn_rate",
		"Error-budget burn rate over the sliding window (1.0 = spending exactly the budget).")
}

// Observe classifies one request. failed marks a server error (counted
// bad regardless of latency); otherwise the request is bad when it
// exceeded the latency target.
func (s *SLO) Observe(latency time.Duration, failed bool) {
	now := s.clock.Now()
	epoch := now.UnixNano() / int64(s.width)
	s.mu.Lock()
	b := &s.buckets[epoch%sloBuckets]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	s.lifeTotal++
	switch {
	case failed:
		b.errors++
		s.lifeBad++
	case latency > s.target:
		b.slow++
		s.lifeBad++
	}
	if s.compliance != nil {
		snap := s.snapshotLocked(epoch)
		s.compliance.Set(snap.Compliance)
		s.burn.Set(snap.BurnRate)
	}
	s.mu.Unlock()
}

// SLOSnapshot is the tracker's JSON view for /debug/ops.
type SLOSnapshot struct {
	// TargetSeconds is the latency objective.
	TargetSeconds float64 `json:"target_seconds"`
	// Objective is the required good fraction, e.g. 0.99.
	Objective float64 `json:"objective"`
	// WindowSeconds is the sliding window length.
	WindowSeconds float64 `json:"window_seconds"`
	// Total/Good/Errors/Slow count the window's requests.
	Total  uint64 `json:"total"`
	Good   uint64 `json:"good"`
	Errors uint64 `json:"errors"`
	Slow   uint64 `json:"slow"`
	// Compliance is Good/Total (1 when the window is empty).
	Compliance float64 `json:"compliance"`
	// BudgetUsed is the bad fraction over the allowed bad fraction:
	// above 1 the window has already spent more than its budget.
	BudgetUsed float64 `json:"budget_used"`
	// BurnRate equals BudgetUsed (the window-normalized burn): the
	// classic multi-window alerting threshold compares it against 1.
	BurnRate float64 `json:"burn_rate"`
	// LifetimeTotal/LifetimeBad are process-lifetime counts.
	LifetimeTotal uint64 `json:"lifetime_total"`
	LifetimeBad   uint64 `json:"lifetime_bad"`
}

// Snapshot summarizes the current sliding window.
func (s *SLO) Snapshot() SLOSnapshot {
	epoch := s.clock.Now().UnixNano() / int64(s.width)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(epoch)
}

func (s *SLO) snapshotLocked(nowEpoch int64) SLOSnapshot {
	snap := SLOSnapshot{
		TargetSeconds: s.target.Seconds(),
		Objective:     s.objective,
		WindowSeconds: (s.width * sloBuckets).Seconds(),
		Compliance:    1,
		LifetimeTotal: s.lifeTotal,
		LifetimeBad:   s.lifeBad,
	}
	oldest := nowEpoch - sloBuckets + 1
	for i := range s.buckets {
		b := &s.buckets[i]
		if b.epoch < oldest || b.epoch > nowEpoch {
			continue
		}
		snap.Total += b.total
		snap.Errors += b.errors
		snap.Slow += b.slow
	}
	snap.Good = snap.Total - snap.Errors - snap.Slow
	if snap.Total > 0 {
		snap.Compliance = float64(snap.Good) / float64(snap.Total)
		badFrac := float64(snap.Errors+snap.Slow) / float64(snap.Total)
		snap.BudgetUsed = badFrac / (1 - s.objective)
		snap.BurnRate = snap.BudgetUsed
	}
	return snap
}
