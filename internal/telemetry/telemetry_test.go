package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "Requests.", "mode", "static")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same series.
	if reg.Counter("reqs_total", "Requests.", "mode", "static") != c {
		t.Error("re-registration returned a different counter")
	}
	g := reg.Gauge("inflight", "In-flight requests.")
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "B.", "mode", "static", "class", "2xx").Add(3)
	reg.Counter("b_total", "B.", "mode", "dynamic", "class", "5xx").Inc()
	reg.Gauge("a_gauge", "A.").Set(2.5)
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	// Families sorted by name; labels sorted by key.
	if !strings.Contains(out, "# HELP b_total B.\n# TYPE b_total counter\n") {
		t.Errorf("bad family header:\n%s", out)
	}
	if !strings.Contains(out, `b_total{class="2xx",mode="static"} 3`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
	if !strings.Contains(out, `b_total{class="5xx",mode="dynamic"} 1`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
	if !strings.Contains(out, "a_gauge 2.5") {
		t.Errorf("missing gauge:\n%s", out)
	}
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "C.", "path", `a"b\c`).Inc()
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `c_total{path="a\"b\\c"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

func TestTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on counter/gauge name conflict")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x_total", "X.")
	reg.Gauge("x_total", "X.")
}

// TestConcurrentMetrics exercises every metric type from many
// goroutines; run under -race this validates the atomic hot paths.
func TestConcurrentMetrics(t *testing.T) {
	reg := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("cc_total", "C.")
			g := reg.Gauge("gg", "G.")
			h := reg.Histogram("hh_seconds", "H.", nil)
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
			}
		}()
	}
	// Concurrent scrapes while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			reg.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := reg.Counter("cc_total", "C.").Value(); got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
	if got := reg.Histogram("hh_seconds", "H.", nil).Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
	if got := reg.Gauge("gg", "G.").Value(); got != workers*each {
		t.Errorf("gauge = %v, want %d", got, workers*each)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("build")
	med := tr.Root().Child("mediation")
	time.Sleep(2 * time.Millisecond)
	med.Finish()
	q := tr.Root().Child("query")
	q1 := q.Child("query[0]")
	time.Sleep(time.Millisecond)
	q1.Finish()
	q.Finish()
	tr.Finish()

	if tr.Duration() < med.Duration() {
		t.Errorf("root %v shorter than child %v", tr.Duration(), med.Duration())
	}
	// Finish is idempotent.
	d := med.Duration()
	med.Finish()
	if med.Duration() != d {
		t.Error("second Finish changed duration")
	}
	sum := tr.Summary()
	for _, want := range []string{"build", "mediation", "query", "query[0]"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	// Children are indented under parents.
	if strings.Index(sum, "mediation") < strings.Index(sum, "build") {
		t.Errorf("ordering wrong:\n%s", sum)
	}
}

func TestTraceConcurrentChildren(t *testing.T) {
	tr := NewTrace("t")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Root().Child("c").Finish()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Root().Children()); n != 800 {
		t.Errorf("children = %d, want 800", n)
	}
}
