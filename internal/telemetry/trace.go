package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value attribute attached to a span or event. Values
// are kept as-is and rendered with %v (or JSON-marshaled by the trace
// exporters), so numbers stay numbers.
type Attr struct {
	Key   string
	Value any
}

// Event is a named point in time inside a span, with optional
// attributes — "violations found", "cache adopted", and the like.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Span is one timed phase of a trace, with parent/child nesting. A
// span is open until Finish is called; Duration of an open span is the
// time elapsed so far. Child creation, finishing, attribute and event
// recording are all safe for concurrent use.
type Span struct {
	Name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	done     bool
	children []*Span
	attrs    []Attr
	events   []Event
}

// Start returns the span's start time.
func (s *Span) Start() time.Time { return s.start }

// Finish closes the span. Finishing twice keeps the first end time.
func (s *Span) Finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.done = true
		s.end = time.Now()
	}
}

// Duration is the span's elapsed time (up to now if still open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	c := &Span{Name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Children returns a snapshot of the nested spans.
func (s *Span) Children() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// SetAttr attaches (or replaces) an attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Attrs returns a snapshot of the span's attributes, sorted by key so
// renderings are deterministic.
func (s *Span) Attrs() []Attr {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// AddEvent records a point-in-time event on the span. kv are
// alternating key/value pairs (a trailing key without a value is
// dropped), slog-style.
func (s *Span) AddEvent(name string, kv ...any) {
	ev := Event{Name: name, Time: time.Now()}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{Key: fmt.Sprint(kv[i]), Value: kv[i+1]})
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a snapshot of the span's events in recording order.
func (s *Span) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Trace is a tree of spans rooted at one operation (e.g. a site
// build). Use Root().Child(...) for phases and Summary() for a
// human-readable timeline. ID correlates log lines with the trace:
// every slog line of a build carries the same build_id.
type Trace struct {
	root *Span
	// ID is a process-unique correlation identifier ("build-…").
	ID string
}

// NewTrace starts a trace whose root span begins now.
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{Name: name, start: time.Now()}, ID: NewID("build")}
}

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// Finish closes the root span.
func (t *Trace) Finish() { t.root.Finish() }

// Duration is the root span's elapsed time.
func (t *Trace) Duration() time.Duration { return t.root.Duration() }

// Summary renders the span tree as an indented timeline: one line per
// span with its offset from the trace start, its duration, and its
// share of the root duration.
func (t *Trace) Summary() string {
	var sb strings.Builder
	t.WriteSummary(&sb)
	return sb.String()
}

// WriteSummary writes Summary to w.
func (t *Trace) WriteSummary(w io.Writer) {
	total := t.root.Duration()
	writeSpan(w, t.root, t.root.start, total, 0)
}

func writeSpan(w io.Writer, s *Span, t0 time.Time, total time.Duration, depth int) {
	d := s.Duration()
	pct := 100.0
	if total > 0 {
		pct = 100 * float64(d) / float64(total)
	}
	fmt.Fprintf(w, "%s%-*s %10s  +%-10s %5.1f%%\n",
		strings.Repeat("  ", depth), 24-2*depth, s.Name,
		round(d), round(s.start.Sub(t0)), pct)
	for _, c := range s.Children() {
		writeSpan(w, c, t0, total, depth+1)
	}
}

// round trims durations to a readable precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
