// Package template implements STRUDEL's HTML-template language (paper
// Sec. 4, Fig. 6): plain HTML extended with three expressions, each of
// which produces plain HTML text:
//
//   - a format expression   <SFMT attrExpr [EMBED] [LINK=tag]
//     [ORDER=ascend|descend [KEY=attrExpr]] [DELIM="sep"]>
//     (with <SFMT_UL ...> and <SFMT_OL ...> list shorthands),
//   - a conditional         <SIF cond> ... [<SELSE> ...] </SIF>,
//   - an enumeration        <SFOR id attrExpr [ORDER=...] [DELIM=...]>
//     ... </SFOR>.
//
// An attribute expression is a single attribute or a bounded sequence
// of attributes referencing reachable objects (e.g. Paper.Name),
// optionally rooted at an SFOR variable. Conditions test attribute
// existence (non-null) and compare attribute expressions with
// constants using =, !=, <, <=, >, >=, combined with AND, OR, NOT.
package template

import (
	"fmt"
	"strings"

	"strudel/internal/graph"
)

// Template is a parsed HTML template.
type Template struct {
	Name   string
	Source string
	nodes  []node
}

type node interface{ isNode() }

// textNode is literal HTML emitted verbatim.
type textNode struct {
	text string
}

// AttrExpr is a dotted attribute path, e.g. ["Paper", "Name"]. The
// first component resolves against the enumeration variables in scope
// before falling back to an attribute of the current object.
type AttrExpr []string

func (a AttrExpr) String() string { return strings.Join(a, ".") }

// OrderSpec is the ORDER directive: sort the values ascending or
// descending, optionally by a KEY attribute of object values.
type OrderSpec struct {
	Descend bool
	Key     AttrExpr
}

// listKind selects the SFMT list shorthand.
type listKind int

const (
	listNone listKind = iota
	listUL
	listOL
)

// fmtNode is a format expression.
type fmtNode struct {
	expr  AttrExpr
	embed bool
	// linkTag is the LINK= tag: an attribute expression or literal
	// string used as the anchor text for link-rendered values.
	linkExpr AttrExpr
	linkLit  string
	hasLink  bool
	order    *OrderSpec
	delim    string
	hasDelim bool
	list     listKind
}

// ifNode is a conditional expression.
type ifNode struct {
	cond     condExpr
	then, el []node
}

// forNode is an enumeration expression.
type forNode struct {
	varName string
	expr    AttrExpr
	order   *OrderSpec
	delim   string
	body    []node
}

func (textNode) isNode() {}
func (*fmtNode) isNode() {}
func (*ifNode) isNode()  {}
func (*forNode) isNode() {}

// condExpr is a template condition.
type condExpr interface{ isCond() }

// existsCond tests whether an attribute expression is non-null.
type existsCond struct {
	expr AttrExpr
}

// cmpCond compares two operands.
type cmpCond struct {
	left, right operand
	op          cmpOp
}

type andCond struct{ left, right condExpr }
type orCond struct{ left, right condExpr }
type notCond struct{ inner condExpr }

func (existsCond) isCond() {}
func (cmpCond) isCond()    {}
func (andCond) isCond()    {}
func (orCond) isCond()     {}
func (notCond) isCond()    {}

// operand is an attribute expression or a constant; null marks the
// NULL keyword.
type operand struct {
	expr  AttrExpr
	konst graph.Value
	null  bool
	isExp bool
}

type cmpOp int

const (
	cmpEq cmpOp = iota
	cmpNeq
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

func (o cmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[o]
}

// NumNodes reports the number of AST nodes, a complexity metric used
// by the experiment harness to report template sizes.
func (t *Template) NumNodes() int { return countNodes(t.nodes) }

func countNodes(ns []node) int {
	total := 0
	for _, n := range ns {
		total++
		switch n := n.(type) {
		case *ifNode:
			total += countNodes(n.then) + countNodes(n.el)
		case *forNode:
			total += countNodes(n.body)
		}
	}
	return total
}

// Lines reports the template source's line count, matching how the
// paper reports template sizes (e.g. "17 HTML templates (380 lines)").
func (t *Template) Lines() int {
	if t.Source == "" {
		return 0
	}
	return strings.Count(t.Source, "\n") + 1
}

func (t *Template) String() string {
	return fmt.Sprintf("template %s (%d lines, %d nodes)", t.Name, t.Lines(), t.NumNodes())
}
