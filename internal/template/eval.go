package template

import (
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"strudel/internal/graph"
)

// Tiny aliases keep parser.go free of a graph import cycle of names.
func strValue(s string) graph.Value    { return graph.Str(s) }
func intValue(n int64) graph.Value     { return graph.Int(n) }
func floatValue(f float64) graph.Value { return graph.Float(f) }
func boolValue(b bool) graph.Value     { return graph.Bool(b) }

// RenderOpts carry the SFMT directives that affect how a single value
// is rendered.
type RenderOpts struct {
	// Embed forces embedding of internal objects instead of linking.
	Embed bool
	// LinkTag is the anchor text for link-rendered values ("" means
	// use a type-specific default).
	LinkTag string
}

// ValueRenderer renders one value reference into HTML. The HTML
// generator (package sitegen) supplies an implementation that knows
// which objects are realized as pages and where their files live; the
// template package's DefaultRenderer covers atoms only.
type ValueRenderer func(v graph.Value, opts RenderOpts) (string, error)

// Env is the evaluation context for one template execution.
type Env struct {
	// Graph is the site graph the object lives in.
	Graph *graph.Graph
	// Self is the current object.
	Self graph.OID
	// Vars holds SFOR variable bindings; nil is fine.
	Vars map[string]graph.Value
	// Render renders value references; nil uses DefaultRenderer.
	Render ValueRenderer
}

// DefaultRenderer renders atomic values using the paper's
// type-specific rules: most atoms convert to an (escaped) string;
// PostScript and image files render as links since they should not be
// realized as strings. Internal objects render as their display name —
// the site generator overrides this with page links or embedding.
func DefaultRenderer(g *graph.Graph) ValueRenderer {
	return func(v graph.Value, opts RenderOpts) (string, error) {
		return RenderAtom(g, v, opts)
	}
}

// RenderAtom implements the type-specific rendering rules for atomic
// values; node values fall back to their display name.
func RenderAtom(g *graph.Graph, v graph.Value, opts RenderOpts) (string, error) {
	switch v.Kind() {
	case graph.KindNode:
		return html.EscapeString(g.DisplayName(v.OID())), nil
	case graph.KindString, graph.KindInt, graph.KindFloat, graph.KindBool:
		return html.EscapeString(v.Text()), nil
	case graph.KindURL:
		tag := opts.LinkTag
		if tag == "" {
			tag = v.Text()
		}
		return fmt.Sprintf("<a href=%q>%s</a>", v.Text(), html.EscapeString(tag)), nil
	case graph.KindFile:
		switch v.FileType() {
		case graph.FilePostScript, graph.FileImage, graph.FileUnknown:
			// Values that should not be realized as strings get an
			// appropriate link (images additionally an <img>).
			if v.FileType() == graph.FileImage && opts.LinkTag == "" {
				return fmt.Sprintf("<img src=%q>", v.Text()), nil
			}
			tag := opts.LinkTag
			if tag == "" {
				tag = v.Text()
			}
			return fmt.Sprintf("<a href=%q>%s</a>", v.Text(), html.EscapeString(tag)), nil
		default:
			// Text and HTML files embed by reference path; the site
			// generator substitutes file contents when a resolver is
			// configured.
			return html.EscapeString(v.Text()), nil
		}
	default:
		return "", fmt.Errorf("template: cannot render %v", v)
	}
}

// Execute renders the template for env.Self, writing plain HTML.
func (t *Template) Execute(w io.Writer, env *Env) error {
	if env.Graph == nil {
		return fmt.Errorf("template %s: no graph in environment", t.Name)
	}
	if env.Render == nil {
		env.Render = DefaultRenderer(env.Graph)
	}
	return execNodes(w, t.nodes, env)
}

// ExecuteString renders to a string.
func (t *Template) ExecuteString(env *Env) (string, error) {
	var sb strings.Builder
	if err := t.Execute(&sb, env); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func execNodes(w io.Writer, ns []node, env *Env) error {
	for _, n := range ns {
		switch n := n.(type) {
		case textNode:
			if _, err := io.WriteString(w, n.text); err != nil {
				return err
			}
		case *fmtNode:
			if err := execFmt(w, n, env); err != nil {
				return err
			}
		case *ifNode:
			ok, err := evalCond(n.cond, env)
			if err != nil {
				return err
			}
			branch := n.then
			if !ok {
				branch = n.el
			}
			if err := execNodes(w, branch, env); err != nil {
				return err
			}
		case *forNode:
			if err := execFor(w, n, env); err != nil {
				return err
			}
		}
	}
	return nil
}

// evalAttrExpr evaluates an attribute expression to all its values.
// The first component resolves against SFOR variables, then as an
// attribute of the current object; later components traverse edges of
// object values (multi-valued steps flatten).
func evalAttrExpr(expr AttrExpr, env *Env) []graph.Value {
	var current []graph.Value
	rest := expr
	if v, ok := env.Vars[expr[0]]; ok {
		current = []graph.Value{v}
		rest = expr[1:]
	} else {
		current = []graph.Value{graph.NodeValue(env.Self)}
	}
	for _, step := range rest {
		var next []graph.Value
		for _, v := range current {
			if !v.IsNode() {
				continue
			}
			next = append(next, env.Graph.OutLabel(v.OID(), step)...)
		}
		current = next
		if len(current) == 0 {
			return nil
		}
	}
	return current
}

// sortValues applies an ORDER directive. Sort keys are computed once
// per element rather than inside the comparator: a KEY lookup walks
// the graph, and re-evaluating it per comparison turns an n-element
// list into O(n log n) graph reads — visible on large index pages.
func sortValues(vals []graph.Value, ord *OrderSpec, env *Env) {
	type decorated struct {
		key, val graph.Value
	}
	rows := make([]decorated, len(vals))
	for i, v := range vals {
		k := v
		if len(ord.Key) > 0 && v.IsNode() {
			sub := &Env{Graph: env.Graph, Self: v.OID(), Vars: env.Vars, Render: env.Render}
			if ks := evalAttrExpr(ord.Key, sub); len(ks) > 0 {
				k = ks[0]
			} else {
				k = graph.Str("")
			}
		}
		rows[i] = decorated{key: k, val: v}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		cmp, ok := graph.Compare(rows[i].key, rows[j].key)
		if !ok {
			// Fall back to the deterministic total order.
			if graph.Less(rows[i].key, rows[j].key) {
				cmp = -1
			} else {
				cmp = 1
			}
		}
		if ord.Descend {
			return cmp > 0
		}
		return cmp < 0
	})
	for i := range rows {
		vals[i] = rows[i].val
	}
}

func execFmt(w io.Writer, n *fmtNode, env *Env) error {
	vals := evalAttrExpr(n.expr, env)
	if len(vals) == 0 {
		return nil
	}
	if n.order != nil {
		sortValues(vals, n.order, env)
	}
	opts := RenderOpts{Embed: n.embed}
	if n.hasLink {
		if n.linkLit != "" {
			opts.LinkTag = n.linkLit
		} else if len(n.linkExpr) > 0 {
			lv := evalAttrExpr(n.linkExpr, env)
			if len(lv) > 0 {
				opts.LinkTag = lv[0].Text()
			}
		}
	}
	delim := n.delim
	if !n.hasDelim && n.list == listNone {
		delim = " "
	}
	var open, close1, iopen, iclose string
	switch n.list {
	case listUL:
		open, close1, iopen, iclose = "<ul>\n", "</ul>\n", "<li>", "</li>\n"
	case listOL:
		open, close1, iopen, iclose = "<ol>\n", "</ol>\n", "<li>", "</li>\n"
	}
	if _, err := io.WriteString(w, open); err != nil {
		return err
	}
	for i, v := range vals {
		if i > 0 && delim != "" {
			if _, err := io.WriteString(w, delim); err != nil {
				return err
			}
		}
		s, err := env.Render(v, opts)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, iopen+s+iclose); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, close1)
	return err
}

func execFor(w io.Writer, n *forNode, env *Env) error {
	vals := evalAttrExpr(n.expr, env)
	if n.order != nil {
		sortValues(vals, n.order, env)
	}
	for i, v := range vals {
		if i > 0 && n.delim != "" {
			if _, err := io.WriteString(w, n.delim); err != nil {
				return err
			}
		}
		sub := &Env{Graph: env.Graph, Self: env.Self, Render: env.Render,
			Vars: extendVars(env.Vars, n.varName, v)}
		if err := execNodes(w, n.body, sub); err != nil {
			return err
		}
	}
	return nil
}

func extendVars(vars map[string]graph.Value, name string, v graph.Value) map[string]graph.Value {
	out := make(map[string]graph.Value, len(vars)+1)
	for k, val := range vars {
		out[k] = val
	}
	out[name] = v
	return out
}

func evalCond(c condExpr, env *Env) (bool, error) {
	switch c := c.(type) {
	case existsCond:
		return len(evalAttrExpr(c.expr, env)) > 0, nil
	case notCond:
		ok, err := evalCond(c.inner, env)
		return !ok, err
	case andCond:
		l, err := evalCond(c.left, env)
		if err != nil || !l {
			return false, err
		}
		return evalCond(c.right, env)
	case orCond:
		l, err := evalCond(c.left, env)
		if err != nil || l {
			return l, err
		}
		return evalCond(c.right, env)
	case cmpCond:
		lv, lnull := evalOperand(c.left, env)
		rv, rnull := evalOperand(c.right, env)
		// NULL comparisons express existence tests.
		if lnull || rnull {
			eq := lnull == rnull
			switch c.op {
			case cmpEq:
				return eq, nil
			case cmpNeq:
				return !eq, nil
			default:
				return false, nil
			}
		}
		cmp, ok := graph.Compare(lv, rv)
		if !ok {
			return c.op == cmpNeq, nil
		}
		switch c.op {
		case cmpEq:
			return cmp == 0, nil
		case cmpNeq:
			return cmp != 0, nil
		case cmpLt:
			return cmp < 0, nil
		case cmpLe:
			return cmp <= 0, nil
		case cmpGt:
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	default:
		return false, fmt.Errorf("template: unknown condition %T", c)
	}
}

// evalOperand returns the operand's value; null reports a NULL
// constant or an attribute expression with no values.
func evalOperand(o operand, env *Env) (graph.Value, bool) {
	if o.null {
		return graph.Value{}, true
	}
	if !o.isExp {
		return o.konst, false
	}
	vals := evalAttrExpr(o.expr, env)
	if len(vals) == 0 {
		return graph.Value{}, true
	}
	return vals[0], false
}
