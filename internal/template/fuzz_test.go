package template

import (
	"testing"

	"strudel/internal/graph"
)

// FuzzParse asserts the template parser never panics, and that parsed
// templates execute without panicking against a small graph.
func FuzzParse(f *testing.F) {
	f.Add(`<html><SFMT title></html>`)
	f.Add(`<SIF year > 1996>old<SELSE>new</SIF>`)
	f.Add(`<SFOR a author ORDER=ascend KEY=key DELIM=", "><SFMT a.name></SFOR>`)
	f.Add(`<SFMT_UL x ORDER=descend> plain < text `)
	f.Add(`<SIF a = NULL OR (b != 2 AND NOT c)>x</SIF>`)
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "title", graph.Str("T"))
	g.AddEdge(n, "year", graph.Int(1997))
	f.Fuzz(func(t *testing.T, src string) {
		tpl, err := Parse("f", src)
		if err != nil {
			return
		}
		_, _ = tpl.ExecuteString(&Env{Graph: g, Self: n})
	})
}
