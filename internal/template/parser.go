package template

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses template source. Tag names are case-insensitive; text
// outside SFMT/SIF/SFOR tags passes through verbatim.
func Parse(name, src string) (*Template, error) {
	p := &tparser{src: src, name: name}
	nodes, err := p.parseNodes("")
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, p.errf("unexpected closing tag %q", p.pendingClose)
	}
	return &Template{Name: name, Source: src, nodes: nodes}, nil
}

// MustParse parses a template and panics on error.
func MustParse(name, src string) *Template {
	t, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return t
}

type tparser struct {
	src          string
	name         string
	pos          int
	pendingClose string
}

func (p *tparser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:p.pos], "\n")
	return fmt.Errorf("template %s: line %d: %s", p.name, line, fmt.Sprintf(format, args...))
}

// parseNodes parses until EOF or until a closing tag terminating the
// given construct ("sif" accepts </SIF> and <SELSE>, "sfor" accepts
// </SFOR>). The terminating tag is left for the caller to consume via
// pendingClose.
func (p *tparser) parseNodes(within string) ([]node, error) {
	var nodes []node
	for p.pos < len(p.src) {
		lt := strings.IndexByte(p.src[p.pos:], '<')
		if lt < 0 {
			nodes = append(nodes, textNode{text: p.src[p.pos:]})
			p.pos = len(p.src)
			return nodes, nil
		}
		if lt > 0 {
			nodes = append(nodes, textNode{text: p.src[p.pos : p.pos+lt]})
			p.pos += lt
		}
		tagName, tagBody, tagEnd, ok, err := p.peekTag()
		if err != nil {
			return nil, err
		}
		if !ok {
			// Not one of our tags: emit the '<' and continue.
			nodes = append(nodes, textNode{text: "<"})
			p.pos++
			continue
		}
		switch tagName {
		case "sfmt", "sfmt_ul", "sfmt_ol":
			n, err := p.parseFmt(tagName, tagBody)
			if err != nil {
				return nil, err
			}
			p.pos = tagEnd
			nodes = append(nodes, n)
		case "sif":
			p.pos = tagEnd
			n, err := p.parseIf(tagBody)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		case "sfor":
			p.pos = tagEnd
			n, err := p.parseFor(tagBody)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		case "selse", "/sif":
			if within != "sif" {
				return nil, p.errf("<%s> outside <SIF>", strings.ToUpper(tagName))
			}
			p.pendingClose = tagName
			return nodes, nil
		case "/sfor":
			if within != "sfor" {
				return nil, p.errf("</SFOR> without <SFOR>")
			}
			p.pendingClose = tagName
			return nodes, nil
		default:
			nodes = append(nodes, textNode{text: "<"})
			p.pos++
		}
	}
	if within != "" {
		return nil, p.errf("unterminated <%s>", strings.ToUpper(within))
	}
	return nodes, nil
}

// peekTag inspects the tag at p.pos (which points at '<'). It returns
// the lowercase tag name, the raw attribute text, the position just
// past '>', and whether this is a template tag. A malformed template
// tag (unterminated string, missing '>') is an error rather than being
// silently passed through. Inside an SIF tag, the closing '>' is found
// with awareness of quoted strings and comparison operators: '<', '>',
// '<=' and '>=' surrounded by spaces stay in the condition, so
// <SIF year > 1996> parses.
func (p *tparser) peekTag() (name, body string, end int, ok bool, err error) {
	// Read the tag name.
	i := p.pos + 1
	start := i
	for i < len(p.src) && p.src[i] != '>' && p.src[i] != '<' && !unicode.IsSpace(rune(p.src[i])) {
		i++
	}
	name = strings.ToLower(p.src[start:i])
	switch name {
	case "sfmt", "sfmt_ul", "sfmt_ol", "sif", "selse", "/sif", "sfor", "/sfor":
	default:
		return "", "", 0, false, nil
	}
	isSIF := name == "sif"
	bodyStart := i
	gt := -1
scan:
	for ; i < len(p.src); i++ {
		switch p.src[i] {
		case '"':
			for i++; i < len(p.src) && p.src[i] != '"'; i++ {
				if p.src[i] == '\\' {
					i++
				}
			}
			if i >= len(p.src) {
				return "", "", 0, false, p.errf("unterminated string in <%s> tag", strings.ToUpper(name))
			}
		case '>':
			if isSIF {
				if i+1 < len(p.src) && p.src[i+1] == '=' {
					i++ // '>=' operator
					continue
				}
				if p.src[i-1] == ' ' && i+1 < len(p.src) && p.src[i+1] == ' ' {
					continue // ' > ' operator
				}
			}
			gt = i
			break scan
		case '<':
			if isSIF && p.src[i-1] == ' ' {
				continue // '<' or '<=' operator in a condition
			}
			return "", "", 0, false, p.errf("unexpected '<' inside <%s> tag", strings.ToUpper(name))
		}
	}
	if gt < 0 {
		return "", "", 0, false, p.errf("unterminated <%s> tag", strings.ToUpper(name))
	}
	return name, strings.TrimSpace(p.src[bodyStart:gt]), gt + 1, true, nil
}

// parseFmt parses an SFMT tag body: attrExpr then directives.
func (p *tparser) parseFmt(tagName, body string) (*fmtNode, error) {
	toks, err := tokenizeTag(body)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	if len(toks) == 0 {
		return nil, p.errf("<SFMT> missing attribute expression")
	}
	n := &fmtNode{}
	switch tagName {
	case "sfmt_ul":
		n.list = listUL
	case "sfmt_ol":
		n.list = listOL
	}
	expr, err := parseAttrExpr(toks[0].text)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	n.expr = expr
	for _, t := range toks[1:] {
		key := strings.ToUpper(t.text)
		switch {
		case key == "EMBED" && !t.isString && t.value == "":
			n.embed = true
		case key == "LINK":
			if t.value == "" && !t.valueIsString {
				return nil, p.errf("LINK= requires a value")
			}
			if t.valueIsString {
				n.linkLit = t.value
			} else {
				le, err := parseAttrExpr(t.value)
				if err != nil {
					return nil, p.errf("LINK=%s: %v", t.value, err)
				}
				n.linkExpr = le
			}
			n.hasLink = true
		case key == "ORDER":
			ord, err := parseOrder(t.value)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			n.order = ord
		case key == "KEY":
			if n.order == nil {
				return nil, p.errf("KEY= without ORDER=")
			}
			ke, err := parseAttrExpr(t.value)
			if err != nil {
				return nil, p.errf("KEY=%s: %v", t.value, err)
			}
			n.order.Key = ke
		case key == "DELIM":
			if !t.valueIsString {
				return nil, p.errf("DELIM= requires a quoted string")
			}
			n.delim = t.value
			n.hasDelim = true
		default:
			return nil, p.errf("unknown SFMT directive %q", t.text)
		}
	}
	return n, nil
}

// parseIf parses the SIF condition, then-branch, optional SELSE branch
// and closing tag.
func (p *tparser) parseIf(body string) (*ifNode, error) {
	cond, err := parseCond(body)
	if err != nil {
		return nil, p.errf("SIF condition: %v", err)
	}
	then, err := p.parseNodes("sif")
	if err != nil {
		return nil, err
	}
	n := &ifNode{cond: cond, then: then}
	if p.pendingClose == "selse" {
		p.pendingClose = ""
		// Skip past the <SELSE> tag itself.
		if err := p.consumeTag(); err != nil {
			return nil, err
		}
		el, err := p.parseNodes("sif")
		if err != nil {
			return nil, err
		}
		if p.pendingClose != "/sif" {
			return nil, p.errf("unterminated <SELSE>")
		}
		n.el = el
	}
	if p.pendingClose != "/sif" {
		return nil, p.errf("unterminated <SIF>")
	}
	p.pendingClose = ""
	return n, p.consumeTag()
}

// parseFor parses an SFOR tag: variable, attribute expression,
// optional directives; then the body and closing tag.
func (p *tparser) parseFor(body string) (*forNode, error) {
	toks, err := tokenizeTag(body)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	if len(toks) < 2 {
		return nil, p.errf("<SFOR> needs a variable and an attribute expression")
	}
	n := &forNode{varName: toks[0].text}
	expr, err := parseAttrExpr(toks[1].text)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	n.expr = expr
	for _, t := range toks[2:] {
		switch strings.ToUpper(t.text) {
		case "ORDER":
			ord, err := parseOrder(t.value)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			n.order = ord
		case "KEY":
			if n.order == nil {
				return nil, p.errf("KEY= without ORDER=")
			}
			ke, err := parseAttrExpr(t.value)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			n.order.Key = ke
		case "DELIM":
			n.delim = t.value
		default:
			return nil, p.errf("unknown SFOR directive %q", t.text)
		}
	}
	bodyNodes, err := p.parseNodes("sfor")
	if err != nil {
		return nil, err
	}
	if p.pendingClose != "/sfor" {
		return nil, p.errf("unterminated <SFOR>")
	}
	p.pendingClose = ""
	n.body = bodyNodes
	return n, p.consumeTag()
}

// consumeTag advances past the tag at p.pos.
func (p *tparser) consumeTag() error {
	gt := strings.IndexByte(p.src[p.pos:], '>')
	if gt < 0 {
		return p.errf("malformed tag")
	}
	p.pos += gt + 1
	return nil
}

func parseOrder(v string) (*OrderSpec, error) {
	switch strings.ToLower(v) {
	case "ascend", "asc":
		return &OrderSpec{}, nil
	case "descend", "desc":
		return &OrderSpec{Descend: true}, nil
	default:
		return nil, fmt.Errorf("ORDER must be ascend or descend, got %q", v)
	}
}

// parseAttrExpr parses ID(.ID)*, with an optional leading '@' (the
// Fig. 6 grammar writes attribute expressions as @ID.ID).
func parseAttrExpr(s string) (AttrExpr, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "@")
	if s == "" {
		return nil, fmt.Errorf("empty attribute expression")
	}
	parts := strings.Split(s, ".")
	for _, part := range parts {
		if part == "" {
			return nil, fmt.Errorf("malformed attribute expression %q", s)
		}
		for _, r := range part {
			if r != '_' && r != '-' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
				return nil, fmt.Errorf("bad character %q in attribute expression %q", r, s)
			}
		}
	}
	return AttrExpr(parts), nil
}

// tagToken is one token of a tag body: a bare word, KEY=value pair, or
// quoted string.
type tagToken struct {
	text          string // word or directive key
	value         string // directive value
	isString      bool
	valueIsString bool
}

// tokenizeTag splits a tag body into words and KEY=value pairs, with
// double-quoted values.
func tokenizeTag(body string) ([]tagToken, error) {
	var toks []tagToken
	i := 0
	for i < len(body) {
		r := body[i]
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			i++
			continue
		}
		if r == '"' {
			s, next, err := scanQuoted(body, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tagToken{text: s, isString: true})
			i = next
			continue
		}
		start := i
		for i < len(body) && !strings.ContainsRune(" \t\n\r=", rune(body[i])) {
			i++
		}
		word := body[start:i]
		if i < len(body) && body[i] == '=' {
			i++
			if i < len(body) && body[i] == '"' {
				s, next, err := scanQuoted(body, i)
				if err != nil {
					return nil, err
				}
				toks = append(toks, tagToken{text: word, value: s, valueIsString: true})
				i = next
				continue
			}
			vstart := i
			for i < len(body) && !strings.ContainsRune(" \t\n\r", rune(body[i])) {
				i++
			}
			toks = append(toks, tagToken{text: word, value: body[vstart:i]})
			continue
		}
		toks = append(toks, tagToken{text: word})
	}
	return toks, nil
}

func scanQuoted(s string, start int) (string, int, error) {
	i := start + 1
	var sb strings.Builder
	for i < len(s) {
		switch s[i] {
		case '"':
			return sb.String(), i + 1, nil
		case '\\':
			if i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			return "", 0, fmt.Errorf("unterminated escape in tag")
		default:
			sb.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated string in tag")
}

// parseCond parses a SIF condition: OR-combination of AND-combinations
// of possibly negated primaries.
func parseCond(src string) (condExpr, error) {
	cp := &condParser{}
	if err := cp.tokenize(src); err != nil {
		return nil, err
	}
	c, err := cp.parseOr()
	if err != nil {
		return nil, err
	}
	if cp.pos < len(cp.toks) {
		return nil, fmt.Errorf("unexpected %q in condition", cp.toks[cp.pos].text)
	}
	return c, nil
}

type condTok struct {
	kind string // word, string, int, float, op, lparen, rparen
	text string
}

type condParser struct {
	toks []condTok
	pos  int
}

func (cp *condParser) tokenize(src string) error {
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			cp.toks = append(cp.toks, condTok{kind: "lparen"})
			i++
		case c == ')':
			cp.toks = append(cp.toks, condTok{kind: "rparen"})
			i++
		case c == '"':
			s, next, err := scanQuoted(src, i)
			if err != nil {
				return err
			}
			cp.toks = append(cp.toks, condTok{kind: "string", text: s})
			i = next
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			cp.toks = append(cp.toks, condTok{kind: "op", text: "!="})
			i += 2
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			cp.toks = append(cp.toks, condTok{kind: "op", text: op})
		case c == '=':
			cp.toks = append(cp.toks, condTok{kind: "op", text: "="})
			i++
		case c == '-' || c >= '0' && c <= '9':
			start := i
			i++
			kind := "int"
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' {
					kind = "float"
				}
				i++
			}
			cp.toks = append(cp.toks, condTok{kind: kind, text: src[start:i]})
		default:
			start := i
			for i < len(src) && (src[i] == '_' || src[i] == '-' || src[i] == '.' || src[i] == '@' ||
				unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			if i == start {
				return fmt.Errorf("unexpected character %q in condition", c)
			}
			cp.toks = append(cp.toks, condTok{kind: "word", text: src[start:i]})
		}
	}
	return nil
}

func (cp *condParser) peekWord(w string) bool {
	return cp.pos < len(cp.toks) && cp.toks[cp.pos].kind == "word" && strings.EqualFold(cp.toks[cp.pos].text, w)
}

func (cp *condParser) parseOr() (condExpr, error) {
	left, err := cp.parseAnd()
	if err != nil {
		return nil, err
	}
	for cp.peekWord("OR") {
		cp.pos++
		right, err := cp.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orCond{left: left, right: right}
	}
	return left, nil
}

func (cp *condParser) parseAnd() (condExpr, error) {
	left, err := cp.parseUnary()
	if err != nil {
		return nil, err
	}
	for cp.peekWord("AND") {
		cp.pos++
		right, err := cp.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andCond{left: left, right: right}
	}
	return left, nil
}

func (cp *condParser) parseUnary() (condExpr, error) {
	if cp.peekWord("NOT") {
		cp.pos++
		inner, err := cp.parseUnary()
		if err != nil {
			return nil, err
		}
		return notCond{inner: inner}, nil
	}
	if cp.pos < len(cp.toks) && cp.toks[cp.pos].kind == "lparen" {
		cp.pos++
		inner, err := cp.parseOr()
		if err != nil {
			return nil, err
		}
		if cp.pos >= len(cp.toks) || cp.toks[cp.pos].kind != "rparen" {
			return nil, fmt.Errorf("missing ')' in condition")
		}
		cp.pos++
		return inner, nil
	}
	return cp.parseComparison()
}

func (cp *condParser) parseComparison() (condExpr, error) {
	left, err := cp.parseOperand()
	if err != nil {
		return nil, err
	}
	if cp.pos >= len(cp.toks) || cp.toks[cp.pos].kind != "op" {
		// Bare attribute expression: existence test.
		if !left.isExp {
			return nil, fmt.Errorf("constant alone is not a condition")
		}
		return existsCond{expr: left.expr}, nil
	}
	opTok := cp.toks[cp.pos].text
	cp.pos++
	right, err := cp.parseOperand()
	if err != nil {
		return nil, err
	}
	ops := map[string]cmpOp{"=": cmpEq, "!=": cmpNeq, "<": cmpLt, "<=": cmpLe, ">": cmpGt, ">=": cmpGe}
	return cmpCond{left: left, right: right, op: ops[opTok]}, nil
}

func (cp *condParser) parseOperand() (operand, error) {
	if cp.pos >= len(cp.toks) {
		return operand{}, fmt.Errorf("missing operand")
	}
	t := cp.toks[cp.pos]
	cp.pos++
	switch t.kind {
	case "string":
		return operand{konst: strValue(t.text)}, nil
	case "int":
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return operand{}, err
		}
		return operand{konst: intValue(n)}, nil
	case "float":
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return operand{}, err
		}
		return operand{konst: floatValue(f)}, nil
	case "word":
		switch strings.ToUpper(t.text) {
		case "NULL":
			return operand{null: true}, nil
		case "TRUE":
			return operand{konst: boolValue(true)}, nil
		case "FALSE":
			return operand{konst: boolValue(false)}, nil
		}
		expr, err := parseAttrExpr(t.text)
		if err != nil {
			return operand{}, err
		}
		return operand{expr: expr, isExp: true}, nil
	default:
		return operand{}, fmt.Errorf("unexpected %q in condition", t.text)
	}
}
