package template

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"strudel/internal/graph"
)

// pubGraph builds a small site-graph fragment for template tests.
func pubGraph() (*graph.Graph, graph.OID) {
	g := graph.New("site")
	pp := g.NewNode("PaperPresentation(pub1)")
	g.AddEdge(pp, "title", graph.Str("Specifying Representations"))
	g.AddEdge(pp, "author", graph.Str("Norman Ramsey"))
	g.AddEdge(pp, "author", graph.Str("Mary Fernandez"))
	g.AddEdge(pp, "year", graph.Int(1997))
	g.AddEdge(pp, "journal", graph.Str("TOPLAS"))
	g.AddEdge(pp, "postscript", graph.File("papers/toplas97.ps.gz", graph.FilePostScript))
	ab := g.NewNode("AbstractPage(pub1)")
	g.AddEdge(pp, "Abstract", graph.NodeValue(ab))
	g.AddEdge(ab, "abstract", graph.File("abstracts/toplas97.txt", graph.FileText))
	return g, pp
}

func render(t *testing.T, src string, g *graph.Graph, self graph.OID) string {
	t.Helper()
	tpl, err := Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tpl.ExecuteString(&Env{Graph: g, Self: self})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPlainHTMLPassesThrough(t *testing.T) {
	g, pp := pubGraph()
	src := `<html><body><h1>Hello</h1><table border=1></table></body></html>`
	if got := render(t, src, g, pp); got != src {
		t.Errorf("got %q", got)
	}
}

func TestSFMTString(t *testing.T) {
	g, pp := pubGraph()
	got := render(t, `<b><SFMT title></b>`, g, pp)
	if got != `<b>Specifying Representations</b>` {
		t.Errorf("got %q", got)
	}
}

func TestSFMTMultiValuedWithDelim(t *testing.T) {
	g, pp := pubGraph()
	got := render(t, `By <SFMT author DELIM=", ">.`, g, pp)
	if got != `By Norman Ramsey, Mary Fernandez.` {
		t.Errorf("got %q", got)
	}
}

func TestSFMTPostScriptLink(t *testing.T) {
	g, pp := pubGraph()
	got := render(t, `<SFMT postscript LINK=title>`, g, pp)
	want := `<a href="papers/toplas97.ps.gz">Specifying Representations</a>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Literal link tag.
	got = render(t, `<SFMT postscript LINK="download">`, g, pp)
	if !strings.Contains(got, ">download</a>") {
		t.Errorf("got %q", got)
	}
	// No link tag: path is the tag.
	got = render(t, `<SFMT postscript>`, g, pp)
	if !strings.Contains(got, ">papers/toplas97.ps.gz</a>") {
		t.Errorf("got %q", got)
	}
}

func TestSFMTMissingAttributeEmitsNothing(t *testing.T) {
	g, pp := pubGraph()
	if got := render(t, `[<SFMT nosuch>]`, g, pp); got != "[]" {
		t.Errorf("got %q", got)
	}
}

func TestSFMTEscapesHTML(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "t", graph.Str(`<script>&`))
	got := render(t, `<SFMT t>`, g, n)
	if got != `&lt;script&gt;&amp;` {
		t.Errorf("got %q", got)
	}
}

func TestSFMTPathExpression(t *testing.T) {
	g, pp := pubGraph()
	got := render(t, `<SFMT Abstract.abstract>`, g, pp)
	if got != `abstracts/toplas97.txt` {
		t.Errorf("got %q", got)
	}
}

func TestSFMTULList(t *testing.T) {
	g, pp := pubGraph()
	got := render(t, `<SFMT_UL author>`, g, pp)
	want := "<ul>\n<li>Norman Ramsey</li>\n<li>Mary Fernandez</li>\n</ul>\n"
	if got != want {
		t.Errorf("got %q", got)
	}
	got = render(t, `<SFMT_OL author>`, g, pp)
	if !strings.HasPrefix(got, "<ol>") || !strings.Contains(got, "<li>Norman Ramsey</li>") {
		t.Errorf("got %q", got)
	}
}

func TestSFMTOrder(t *testing.T) {
	g, pp := pubGraph()
	got := render(t, `<SFMT author ORDER=ascend DELIM="|">`, g, pp)
	if got != "Mary Fernandez|Norman Ramsey" {
		t.Errorf("ascend got %q", got)
	}
	got = render(t, `<SFMT author ORDER=descend DELIM="|">`, g, pp)
	if got != "Norman Ramsey|Mary Fernandez" {
		t.Errorf("descend got %q", got)
	}
}

func TestOrderWithKey(t *testing.T) {
	g := graph.New("g")
	root := g.NewNode("root")
	for _, y := range []int64{1996, 1998, 1997} {
		yp := g.NewNode("")
		g.AddEdge(yp, "Year", graph.Int(y))
		g.AddEdge(root, "YearPage", graph.NodeValue(yp))
	}
	src := `<SFOR y YearPage ORDER=ascend KEY=Year DELIM=","><SFMT y.Year></SFOR>`
	got := render(t, src, g, root)
	if got != "1996,1997,1998" {
		t.Errorf("got %q", got)
	}
}

func TestSIFBranches(t *testing.T) {
	g, pp := pubGraph()
	src := `<SIF journal>In <SFMT journal>.<SELSE>In <SFMT booktitle>.</SIF>`
	if got := render(t, src, g, pp); got != "In TOPLAS." {
		t.Errorf("got %q", got)
	}
	// An object without journal takes the else branch.
	n2 := g.NewNode("other")
	g.AddEdge(n2, "booktitle", graph.Str("ICDE"))
	if got := render(t, src, g, n2); got != "In ICDE." {
		t.Errorf("else branch got %q", got)
	}
}

func TestSIFComparisonsAndBoolOps(t *testing.T) {
	g, pp := pubGraph()
	cases := []struct {
		cond string
		want bool
	}{
		{`year = 1997`, true},
		{`year != 1997`, false},
		{`year > 1996`, true},
		{`year >= 1998`, false},
		{`year < 1998 AND journal = "TOPLAS"`, true},
		{`year < 1990 OR journal`, true},
		{`NOT booktitle`, true},
		{`booktitle = NULL`, true},
		{`journal != NULL`, true},
		{`(year = 1997 OR year = 1998) AND NOT booktitle`, true},
		{`title > "A"`, true},
	}
	for _, c := range cases {
		src := `<SIF ` + c.cond + `>Y<SELSE>N</SIF>`
		got := render(t, src, g, pp)
		want := "N"
		if c.want {
			want = "Y"
		}
		if got != want {
			t.Errorf("cond %q: got %q, want %q", c.cond, got, want)
		}
	}
}

func TestSFORBindsVariable(t *testing.T) {
	g, pp := pubGraph()
	src := `<SFOR a author>[<SFMT a>]</SFOR>`
	got := render(t, src, g, pp)
	if got != "[Norman Ramsey][Mary Fernandez]" {
		t.Errorf("got %q", got)
	}
}

func TestSFORNestedObjects(t *testing.T) {
	g := graph.New("g")
	root := g.NewNode("root")
	for _, name := range []string{"one", "two"} {
		c := g.NewNode("")
		g.AddEdge(c, "name", graph.Str(name))
		g.AddEdge(c, "n", graph.Int(int64(len(name))))
		g.AddEdge(root, "child", graph.NodeValue(c))
	}
	src := `<SFOR c child DELIM="; "><SFMT c.name>=<SFMT c.n></SFOR>`
	got := render(t, src, g, root)
	if got != "one=3; two=3" {
		t.Errorf("got %q", got)
	}
}

func TestSFORNestedLoops(t *testing.T) {
	g := graph.New("g")
	root := g.NewNode("root")
	for _, tag := range []string{"A", "B"} {
		c := g.NewNode("")
		g.AddEdge(c, "tag", graph.Str(tag))
		g.AddEdge(c, "item", graph.Str(tag+"1"))
		g.AddEdge(c, "item", graph.Str(tag+"2"))
		g.AddEdge(root, "group", graph.NodeValue(c))
	}
	src := `<SFOR gr group><SFMT gr.tag>:<SFOR i gr.item><SFMT i> </SFOR></SFOR>`
	got := render(t, src, g, root)
	if got != "A:A1 A2 B:B1 B2 " {
		t.Errorf("got %q", got)
	}
}

func TestCustomRendererReceivesOpts(t *testing.T) {
	g, pp := pubGraph()
	tpl := MustParse("t", `<SFMT Abstract EMBED>`)
	var gotOpts RenderOpts
	var gotVal graph.Value
	out, err := tpl.ExecuteString(&Env{
		Graph: g, Self: pp,
		Render: func(v graph.Value, opts RenderOpts) (string, error) {
			gotOpts, gotVal = opts, v
			return "[rendered]", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "[rendered]" || !gotOpts.Embed || !gotVal.IsNode() {
		t.Errorf("out=%q opts=%+v val=%v", out, gotOpts, gotVal)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unterminated SIF", `<SIF x>abc`},
		{"unterminated SFOR", `<SFOR a b>abc`},
		{"stray SELSE", `<SELSE>`},
		{"stray close", `abc</SIF>`},
		{"empty SFMT", `<SFMT >`},
		{"bad ORDER", `<SFMT x ORDER=sideways>`},
		{"KEY without ORDER", `<SFMT x KEY=y>`},
		{"bad directive", `<SFMT x FROB=1>`},
		{"SFOR missing expr", `<SFOR a></SFOR>`},
		{"bad condition", `<SIF 5>x</SIF>`},
		{"unbalanced paren", `<SIF (x>x</SIF>`},
		{"unterminated string", `<SFMT x DELIM="abc>`},
		{"double else", `<SIF x>a<SELSE>b<SELSE>c</SIF>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse("t", c.src); err == nil {
				t.Errorf("expected error for %q", c.src)
			}
		})
	}
}

func TestNonTemplateTagsPassThrough(t *testing.T) {
	g, pp := pubGraph()
	src := `<p>5 < 6 and <span class="x">ok</span></p>`
	if got := render(t, src, g, pp); got != src {
		t.Errorf("got %q", got)
	}
}

func TestTemplateMetrics(t *testing.T) {
	tpl := MustParse("t", "<h1><SFMT title></h1>\n<SIF x>a<SELSE>b</SIF>\n<SFOR a author><SFMT a></SFOR>\n")
	if tpl.Lines() != 4 {
		t.Errorf("lines = %d", tpl.Lines())
	}
	if tpl.NumNodes() < 6 {
		t.Errorf("nodes = %d", tpl.NumNodes())
	}
	if !strings.Contains(tpl.String(), "template t") {
		t.Errorf("String = %q", tpl.String())
	}
}

func TestPaperPresentationTemplate(t *testing.T) {
	// A full Fig.-7-style PaperPresentation template.
	g, pp := pubGraph()
	src := `<SFMT postscript LINK=title>. By <SFMT author DELIM=", ">.
<SIF journal><SFMT journal><SELSE><SFMT booktitle></SIF>, <SFMT year>.
<SFMT Abstract LINK="abstract">`
	got := render(t, src, g, pp)
	for _, want := range []string{
		`<a href="papers/toplas97.ps.gz">Specifying Representations</a>`,
		`Norman Ramsey, Mary Fernandez`,
		`TOPLAS`,
		`1997`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestOrderedAuthorIdiom(t *testing.T) {
	// The paper's order-preservation idiom (Sec. 5.2): author objects
	// carry an integer key; ORDER=ascend KEY=key restores bibliography
	// order even though the graph model has no lists.
	g := graph.New("g")
	pub := g.NewNode("pub")
	for i, name := range []string{"Zed Zulu", "Ann Alpha", "Mid Mike"} {
		a := g.NewNode("")
		g.AddEdge(a, "name", graph.Str(name))
		g.AddEdge(a, "key", graph.Int(int64(i+1)))
		g.AddEdge(pub, "author", graph.NodeValue(a))
	}
	src := `<SFOR a author ORDER=ascend KEY=key DELIM=", "><SFMT a.name></SFOR>`
	got := render(t, src, g, pub)
	if got != "Zed Zulu, Ann Alpha, Mid Mike" {
		t.Errorf("got %q", got)
	}
	// Sorting by name instead gives alphabetical order.
	src = `<SFOR a author ORDER=ascend KEY=name DELIM=", "><SFMT a.name></SFOR>`
	if got := render(t, src, g, pub); got != "Ann Alpha, Mid Mike, Zed Zulu" {
		t.Errorf("got %q", got)
	}
}

// TestQuickPlainTextIdentity: text without template tags renders
// unchanged (testing/quick over arbitrary tag-free strings).
func TestQuickPlainTextIdentity(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	prop := func(words []string) bool {
		src := strings.Join(words, " ")
		src = strings.Map(func(r rune) rune {
			if r == '<' {
				return '('
			}
			return r
		}, src)
		tpl, err := Parse("q", src)
		if err != nil {
			return false
		}
		out, err := tpl.ExecuteString(&Env{Graph: g, Self: n})
		return err == nil && out == src
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickOrderSorts: ORDER=ascend output is always sorted.
func TestQuickOrderSorts(t *testing.T) {
	prop := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		g := graph.New("g")
		n := g.NewNode("n")
		for _, v := range vals {
			g.AddEdge(n, "v", graph.Int(int64(v)))
		}
		tpl := MustParse("t", `<SFMT v ORDER=ascend DELIM=",">`)
		out, err := tpl.ExecuteString(&Env{Graph: g, Self: n})
		if err != nil {
			return false
		}
		parts := strings.Split(out, ",")
		prev := int64(-1 << 62)
		for _, p := range parts {
			var cur int64
			fmt.Sscanf(p, "%d", &cur)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRenderAtomVariants(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "u", graph.URL("http://x/y"))
	g.AddEdge(n, "f", graph.Float(2.5))
	g.AddEdge(n, "b", graph.Bool(true))
	g.AddEdge(n, "img", graph.File("pic.gif", graph.FileImage))
	g.AddEdge(n, "txt", graph.File("doc.txt", graph.FileText))
	g.AddEdge(n, "page", graph.File("p.html", graph.FileHTML))
	g.AddEdge(n, "other", graph.File("blob.bin", graph.FileUnknown))
	cases := map[string]string{
		`<SFMT u>`:                `<a href="http://x/y">http://x/y</a>`,
		`<SFMT u LINK="site">`:    `<a href="http://x/y">site</a>`,
		`<SFMT f>`:                `2.5`,
		`<SFMT b>`:                `true`,
		`<SFMT img>`:              `<img src="pic.gif">`,
		`<SFMT img LINK="photo">`: `<a href="pic.gif">photo</a>`,
		`<SFMT txt>`:              `doc.txt`,
		`<SFMT page>`:             `p.html`,
		`<SFMT other>`:            `<a href="blob.bin">blob.bin</a>`,
	}
	for src, want := range cases {
		if got := render(t, src, g, n); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
}

func TestCondOperandForms(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "f", graph.Float(2.5))
	g.AddEdge(n, "flag", graph.Bool(true))
	g.AddEdge(n, "s", graph.Str("abc"))
	cases := []struct {
		cond string
		want bool
	}{
		{`f = 2.5`, true},
		{`f < 3.0`, true},
		{`flag = TRUE`, true},
		{`flag = FALSE`, false},
		{`s = "abc"`, true},
		{`NULL = missing`, true},
		{`NULL != s`, true},
		{`NULL < s`, false}, // NULL only supports =/!=
	}
	for _, c := range cases {
		got := render(t, `<SIF `+c.cond+`>Y<SELSE>N</SIF>`, g, n)
		want := "N"
		if c.want {
			want = "Y"
		}
		if got != want {
			t.Errorf("cond %q = %q, want %q", c.cond, got, want)
		}
	}
}

func TestTagStringEscapesInDelim(t *testing.T) {
	g := graph.New("g")
	n := g.NewNode("n")
	g.AddEdge(n, "v", graph.Str("a"))
	g.AddEdge(n, "v", graph.Str("b"))
	got := render(t, `<SFMT v DELIM="\n\t\"x\"">`, g, n)
	if got != "a\n\t\"x\"b" {
		t.Errorf("got %q", got)
	}
}

func TestTemplateStringRendering(t *testing.T) {
	tpl := MustParse("t", `<SFMT a.b>`)
	if tpl.String() == "" || tpl.Lines() != 1 {
		t.Errorf("metrics: %s / %d", tpl.String(), tpl.Lines())
	}
	empty := &Template{Name: "e"}
	if empty.Lines() != 0 {
		t.Errorf("empty lines = %d", empty.Lines())
	}
	// AttrExpr and cmpOp render.
	if (AttrExpr{"a", "b"}).String() != "a.b" {
		t.Error("AttrExpr.String wrong")
	}
	for op, want := range map[cmpOp]string{cmpEq: "=", cmpNeq: "!=", cmpLt: "<", cmpLe: "<=", cmpGt: ">", cmpGe: ">="} {
		if op.String() != want {
			t.Errorf("op %d = %q", op, op.String())
		}
	}
}

func TestCondParserErrors(t *testing.T) {
	for _, cond := range []string{
		`"lonely constant"`,
		`x = `,
		`x ~ y`,
		`(x = 1`,
		`= 3`,
	} {
		if _, err := Parse("t", `<SIF `+cond+`>x</SIF>`); err == nil {
			t.Errorf("cond %q should fail", cond)
		}
	}
}
