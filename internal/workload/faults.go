package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"strudel/internal/resilience"
)

// FaultConfig tunes a FaultInjector. The zero value injects nothing.
type FaultConfig struct {
	// ErrorRate is the probability in [0, 1] that a fetch fails with a
	// transient error.
	ErrorRate float64
	// Latency is added to every successful fetch (via Clock.After, so
	// a fake clock makes it free in tests).
	Latency time.Duration
	// HangEvery makes every Nth fetch block until Release is called —
	// the wrapper equivalent of a remote source that accepts the
	// connection and then never answers. 0 disables.
	HangEvery int
	// Seed drives the error-rate coin flips; the same seed gives the
	// same fault schedule, keeping chaos tests reproducible.
	Seed int64
	// Clock drives Latency; nil means the wall clock.
	Clock resilience.Clock
}

// FaultStats reports what a FaultInjector has done so far.
type FaultStats struct {
	Calls  int // fetches attempted through the injector
	Errors int // fetches failed with an injected error
	Hangs  int // fetches that blocked until Release
}

// FaultInjector wraps a wrapper-level fetch function with configurable
// faults — transient errors, added latency, and hangs — so the
// mediator's degradation paths (retry, breaker, fetch timeout,
// last-good fallback) can be exercised deterministically in tests.
// It is the chaos-harness half of the workload package: the generators
// above fake the paper's data sources, this fakes their failure modes.
type FaultInjector struct {
	mu      sync.Mutex
	cfg     FaultConfig
	rng     *rand.Rand
	stats   FaultStats
	release chan struct{}
}

// NewFaultInjector builds an injector with the given config.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.Clock == nil {
		cfg.Clock = resilience.Real
	}
	return &FaultInjector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		release: make(chan struct{}),
	}
}

// SetErrorRate changes the transient-error probability mid-test, e.g.
// to model a source that recovers.
func (f *FaultInjector) SetErrorRate(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg.ErrorRate = p
}

// Release unblocks every fetch currently hanging (and all future ones):
// hangs stop being injected once called. Safe to call more than once.
func (f *FaultInjector) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.release:
	default:
		close(f.release)
	}
}

// Stats returns a snapshot of the injector's activity.
func (f *FaultInjector) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// WrapFetch wraps a fetch function with the configured faults, in
// order: hang (if due), injected transient error, added latency, then
// the real fetch.
func (f *FaultInjector) WrapFetch(fetch func() (string, error)) func() (string, error) {
	return func() (string, error) {
		f.mu.Lock()
		f.stats.Calls++
		call := f.stats.Calls
		hang := false
		if f.cfg.HangEvery > 0 && call%f.cfg.HangEvery == 0 {
			select {
			case <-f.release:
				// Released: stop injecting hangs.
			default:
				hang = true
				f.stats.Hangs++
			}
		}
		fail := !hang && f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate
		if fail {
			f.stats.Errors++
		}
		latency := f.cfg.Latency
		clock := f.cfg.Clock
		release := f.release
		f.mu.Unlock()

		if hang {
			<-release
			return "", fmt.Errorf("faultinjector: fetch %d hung and was aborted", call)
		}
		if fail {
			return "", fmt.Errorf("faultinjector: injected transient error on fetch %d", call)
		}
		if latency > 0 {
			<-clock.After(latency)
		}
		return fetch()
	}
}

// StaticFetch returns a fetch function that always yields content —
// the simplest healthy source to wrap with faults.
func StaticFetch(content string) func() (string, error) {
	return func() (string, error) { return content, nil }
}
