package workload

import (
	"strings"
	"testing"
	"time"

	"strudel/internal/resilience"
)

func TestFaultInjectorErrorRate(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{ErrorRate: 1, Seed: 1})
	fetch := inj.WrapFetch(StaticFetch("data"))
	if _, err := fetch(); err == nil || !strings.Contains(err.Error(), "injected transient error") {
		t.Fatalf("err = %v, want injected error", err)
	}
	inj.SetErrorRate(0)
	if out, err := fetch(); err != nil || out != "data" {
		t.Fatalf("after recovery: %q, %v", out, err)
	}
	st := inj.Stats()
	if st.Calls != 2 || st.Errors != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		inj := NewFaultInjector(FaultConfig{ErrorRate: 0.5, Seed: 42})
		fetch := inj.WrapFetch(StaticFetch("x"))
		out := make([]bool, 20)
		for i := range out {
			_, err := fetch()
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
	}
}

func TestFaultInjectorHangAndRelease(t *testing.T) {
	inj := NewFaultInjector(FaultConfig{HangEvery: 2})
	fetch := inj.WrapFetch(StaticFetch("x"))
	if _, err := fetch(); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := fetch() // call 2: hangs
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("call 2 returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	inj.Release()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "hung") {
			t.Fatalf("released hang err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Release did not unblock the hanging fetch")
	}
	// After Release, hangs stop being injected.
	if _, err := fetch(); err != nil {
		t.Fatalf("post-release call: %v", err)
	}
	if _, err := fetch(); err != nil {
		t.Fatalf("post-release call (would-hang slot): %v", err)
	}
	if st := inj.Stats(); st.Hangs != 1 {
		t.Errorf("hangs = %d", st.Hangs)
	}
}

func TestFaultInjectorLatencyUsesClock(t *testing.T) {
	clk := resilience.NewAutoClock(time.Unix(0, 0))
	inj := NewFaultInjector(FaultConfig{Latency: 5 * time.Second, Clock: clk})
	fetch := inj.WrapFetch(StaticFetch("x"))
	if _, err := fetch(); err != nil {
		t.Fatal(err)
	}
	if sleeps := clk.Sleeps(); len(sleeps) != 1 || sleeps[0] != 5*time.Second {
		t.Errorf("sleeps = %v", sleeps)
	}
}
