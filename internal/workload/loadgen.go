// Deterministic load generation against the serving edge: closed-loop
// clients with Zipf-distributed page popularity, a client-side ETag
// cache model issuing mixed conditional/unconditional requests, and
// optional fault injection — the conformance-and-performance harness
// for the paper's "millions of users" serving argument (Sec. 6).
//
// Determinism: each client owns a seeded RNG (seed + client index)
// driving both its page choices and its conditional-request coin
// flips, so the request *sequences* are reproducible regardless of
// goroutine interleaving. Only aggregate timing varies run to run.
package workload

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"
)

// LoadOptions tunes RunLoad. The zero value gets small defaults
// suitable for a smoke test.
type LoadOptions struct {
	// Clients is the number of closed-loop clients (default 4): each
	// sends its next request only after the previous one completes.
	Clients int
	// Requests is the per-client request count (default 250).
	Requests int
	// Seed drives every client RNG (client i uses Seed+i).
	Seed int64
	// ZipfS and ZipfV shape page popularity (defaults 1.2 and 1.0):
	// rank-1 pages dominate, the long tail is cold — the skew the
	// hot/cold materialization policy exists for.
	ZipfS, ZipfV float64
	// Conditional is the probability in [0,1] that a client revalidates
	// a page it has a cached ETag for (If-None-Match) instead of
	// refetching unconditionally. Default 0.9 — mixed traffic.
	Conditional float64
	// Gzip makes clients send Accept-Encoding: gzip. Gzip response
	// bodies are transparently decoded before validation.
	Gzip bool
	// Faults optionally wraps every request through a FaultInjector:
	// injected errors surface as client errors, injected latency
	// stretches the closed loop. Nil disables.
	Faults *FaultInjector
	// Validate, when set, checks every completed response (decoded
	// body). A non-nil error is counted and reported.
	Validate func(path string, status int, etag string, body []byte) error
}

func (o *LoadOptions) defaults() {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 250
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.ZipfV < 1 {
		o.ZipfV = 1.0
	}
	if o.Conditional == 0 {
		o.Conditional = 0.9
	}
}

// LoadReport aggregates one RunLoad pass.
type LoadReport struct {
	Clients  int           `json:"clients"`
	Requests int           `json:"requests"`
	Elapsed  time.Duration `json:"elapsed"`
	// RPS is Requests / Elapsed — closed-loop throughput.
	RPS float64 `json:"rps"`
	// Status counts responses by status code; NotModified is the 304
	// count (Status[304], hoisted for the hit-ratio arithmetic).
	Status      map[int]int `json:"status"`
	NotModified int         `json:"not_modified"`
	// Conditional counts requests sent with If-None-Match.
	Conditional int `json:"conditional"`
	// Bytes is the wire bytes received (encoded form for gzip).
	Bytes int64 `json:"bytes"`
	// Errors counts transport faults and validation failures;
	// FirstError keeps the first for diagnosis.
	Errors     int    `json:"errors"`
	FirstError string `json:"first_error,omitempty"`
	// Latency quantiles over every request.
	P50, P99, Max time.Duration `json:"-"`
	P50Ms         float64       `json:"p50_ms"`
	P99Ms         float64       `json:"p99_ms"`
	MaxMs         float64       `json:"max_ms"`
}

// Ratio304 is the fraction of requests answered 304 Not Modified.
func (r *LoadReport) Ratio304() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.NotModified) / float64(r.Requests)
}

// loadRecorder is a minimal ResponseWriter: status, headers and body,
// with none of httptest.ResponseRecorder's extras on the hot path.
type loadRecorder struct {
	header http.Header
	status int
	body   []byte
}

func (r *loadRecorder) Header() http.Header { return r.header }
func (r *loadRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}
func (r *loadRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	r.body = append(r.body, b...)
	return len(b), nil
}

// clientResult is one client's tally, merged after the join.
type clientResult struct {
	status      map[int]int
	conditional int
	bytes       int64
	errors      int
	firstErr    string
	durations   []time.Duration
}

// RunLoad drives the handler in-process (no sockets — the harness
// measures the serving edge, not the kernel) with opts.Clients
// closed-loop clients over the given page paths and returns the
// aggregate report. An empty path list is an error.
func RunLoad(h http.Handler, paths []string, opts LoadOptions) (*LoadReport, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("workload: RunLoad needs at least one path")
	}
	opts.defaults()
	// Sorted copy: the Zipf rank of a page must not depend on the
	// caller's enumeration order.
	ranked := append([]string(nil), paths...)
	sort.Strings(ranked)

	results := make([]clientResult, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = runClient(h, ranked, opts, c)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Clients:  opts.Clients,
		Requests: opts.Clients * opts.Requests,
		Elapsed:  elapsed,
		Status:   map[int]int{},
	}
	var all []time.Duration
	for _, cr := range results {
		for code, n := range cr.status {
			rep.Status[code] += n
		}
		rep.Conditional += cr.conditional
		rep.Bytes += cr.bytes
		rep.Errors += cr.errors
		if rep.FirstError == "" {
			rep.FirstError = cr.firstErr
		}
		all = append(all, cr.durations...)
	}
	rep.NotModified = rep.Status[http.StatusNotModified]
	if elapsed > 0 {
		rep.RPS = float64(rep.Requests) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		rep.P50 = all[n/2]
		rep.P99 = all[(n*99)/100]
		rep.Max = all[n-1]
	}
	rep.P50Ms = float64(rep.P50) / float64(time.Millisecond)
	rep.P99Ms = float64(rep.P99) / float64(time.Millisecond)
	rep.MaxMs = float64(rep.Max) / float64(time.Millisecond)
	return rep, nil
}

// runClient is one closed-loop client: pick a Zipf-ranked page, attach
// If-None-Match when the tag is cached and the coin says revalidate,
// serve in-process, record.
func runClient(h http.Handler, ranked []string, opts LoadOptions, id int) clientResult {
	cr := clientResult{
		status:    map[int]int{},
		durations: make([]time.Duration, 0, opts.Requests),
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(id)))
	zipf := rand.NewZipf(rng, opts.ZipfS, opts.ZipfV, uint64(len(ranked)-1))
	etags := make(map[string]string, len(ranked))
	fail := func(err error) {
		cr.errors++
		if cr.firstErr == "" {
			cr.firstErr = err.Error()
		}
	}
	for i := 0; i < opts.Requests; i++ {
		path := "/" + ranked[zipf.Uint64()]
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if opts.Gzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		if tag, ok := etags[path]; ok && rng.Float64() < opts.Conditional {
			req.Header.Set("If-None-Match", tag)
			cr.conditional++
		}
		rec := &loadRecorder{header: http.Header{}}
		do := func() (string, error) {
			h.ServeHTTP(rec, req)
			return "", nil
		}
		if opts.Faults != nil {
			do = opts.Faults.WrapFetch(do)
		}
		t0 := time.Now()
		_, err := do()
		cr.durations = append(cr.durations, time.Since(t0))
		if err != nil {
			fail(err)
			continue
		}
		cr.status[rec.status]++
		cr.bytes += int64(len(rec.body))
		if rec.status == http.StatusOK {
			if tag := rec.header.Get("ETag"); tag != "" {
				etags[path] = tag
			}
		}
		if opts.Validate != nil {
			body := rec.body
			if rec.header.Get("Content-Encoding") == "gzip" {
				if body, err = gunzip(body); err != nil {
					fail(fmt.Errorf("workload: %s: bad gzip body: %w", path, err))
					continue
				}
			}
			if err := opts.Validate(path, rec.status, rec.header.Get("ETag"), body); err != nil {
				fail(err)
			}
		}
	}
	return cr
}

func gunzip(b []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}
