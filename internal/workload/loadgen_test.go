package workload

import (
	"fmt"
	"net/http"
	"reflect"
	"strconv"
	"testing"
)

// tagServer is a tiny conditional-GET handler: every path serves a
// stable body with a stable ETag and honors If-None-Match, so load
// reports have predictable status mixes.
func tagServer(paths map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, ok := paths[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		etag := `"tag-` + strconv.Itoa(len(body)) + "-" + r.URL.Path[1:] + `"`
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Write([]byte(body))
	})
}

func threePages() (map[string]string, []string) {
	m := map[string]string{
		"/a.html": "<h1>A</h1>",
		"/b.html": "<h1>Bee</h1>",
		"/c.html": "<h1>Sea page</h1>",
	}
	return m, []string{"a.html", "b.html", "c.html"}
}

// TestRunLoadDeterministicSequences: the same seed produces the same
// request mix — identical status counts, conditional counts and byte
// totals — run after run, regardless of goroutine interleaving.
func TestRunLoadDeterministicSequences(t *testing.T) {
	pages, paths := threePages()
	run := func() *LoadReport {
		rep, err := RunLoad(tagServer(pages), paths, LoadOptions{
			Clients: 3, Requests: 200, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1.Status, r2.Status) {
		t.Errorf("status mix differs across runs: %v vs %v", r1.Status, r2.Status)
	}
	if r1.Conditional != r2.Conditional || r1.Bytes != r2.Bytes || r1.NotModified != r2.NotModified {
		t.Errorf("aggregates differ: %+v vs %+v", r1, r2)
	}
	if r1.Requests != 600 || r1.Status[200]+r1.Status[304] != 600 {
		t.Errorf("unexpected request accounting: %+v", r1)
	}
	// With Conditional=0.9 (default) and stable tags, revalidation
	// dominates after each client's first touch of a page.
	if r1.Ratio304() < 0.5 {
		t.Errorf("Ratio304 = %.2f, want most requests revalidated", r1.Ratio304())
	}
	if r1.Conditional != r1.NotModified {
		t.Errorf("every conditional request should 304 here: cond=%d 304=%d",
			r1.Conditional, r1.NotModified)
	}
	// A different seed produces a different (but valid) mix.
	r3, err := RunLoad(tagServer(pages), paths, LoadOptions{
		Clients: 3, Requests: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Status, r3.Status) && r1.Bytes == r3.Bytes {
		t.Errorf("seeds 42 and 7 produced identical traffic — RNG not seeded per run?")
	}
}

// TestRunLoadPathOrderIndependence: Zipf ranks come from the sorted
// path list, so shuffling the caller's slice cannot change the traffic.
func TestRunLoadPathOrderIndependence(t *testing.T) {
	pages, paths := threePages()
	shuffled := []string{paths[2], paths[0], paths[1]}
	opts := LoadOptions{Clients: 2, Requests: 150, Seed: 9}
	r1, err := RunLoad(tagServer(pages), paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunLoad(tagServer(pages), shuffled, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Status, r2.Status) || r1.Bytes != r2.Bytes {
		t.Errorf("path order changed the workload: %+v vs %+v", r1, r2)
	}
}

// TestRunLoadValidationAndFaults: Validate failures and injected
// transport errors are counted, and FirstError survives for diagnosis.
func TestRunLoadValidationAndFaults(t *testing.T) {
	pages, paths := threePages()

	// A validator that rejects one page's body sees every 200 for it.
	rep, err := RunLoad(tagServer(pages), paths, LoadOptions{
		Clients: 2, Requests: 100, Seed: 1,
		Validate: func(path string, status int, etag string, body []byte) error {
			if status == 200 && etag == "" {
				return fmt.Errorf("200 without ETag at %s", path)
			}
			if path == "/b.html" && status == 200 {
				return fmt.Errorf("reject %s", path)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors == 0 || rep.FirstError == "" {
		t.Errorf("validation failures not counted: %+v", rep)
	}
	if rep.Errors != rep.Status[200] && rep.Errors > rep.Status[200] {
		t.Errorf("more errors (%d) than 200s (%d)?", rep.Errors, rep.Status[200])
	}

	// Injected faults surface as client errors without killing the run.
	inj := NewFaultInjector(FaultConfig{ErrorRate: 0.2, Seed: 3})
	rep, err = RunLoad(tagServer(pages), paths, LoadOptions{
		Clients: 2, Requests: 100, Seed: 1, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	if st.Errors == 0 {
		t.Fatalf("injector injected nothing: %+v", st)
	}
	if rep.Errors != st.Errors {
		t.Errorf("report errors %d != injected %d", rep.Errors, st.Errors)
	}
	// Failed fetches still count toward latency samples and totals.
	if got := rep.Status[200] + rep.Status[304] + rep.Errors; got != rep.Requests {
		t.Errorf("accounting leak: 200+304+errors = %d, requests = %d", got, rep.Requests)
	}
}

// TestRunLoadEmptyPaths: no paths is a configuration error.
func TestRunLoadEmptyPaths(t *testing.T) {
	if _, err := RunLoad(tagServer(nil), nil, LoadOptions{}); err == nil {
		t.Fatal("want error for empty path list")
	}
}
