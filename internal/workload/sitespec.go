package workload

import (
	"fmt"
	"strings"

	"strudel/internal/template"
)

// SiteSpec bundles a workload's site-definition query source with its
// HTML templates and generation options — the three artifacts a
// STRUDEL site builder writes. Its size metrics (query lines, template
// count and lines) are what the paper reports per site (Sec. 5.1).
type SiteSpec struct {
	Name      string
	Query     string
	Templates map[string]*template.Template
	EmbedOnly map[string]bool
	Index     string
	Root      string // root Skolem function, for constraints and roots
	// RootCollection names the collect target holding the site roots.
	RootCollection string
}

// QueryLines counts the query's non-blank lines, matching the paper's
// "defined by a 115-line query" style metrics.
func (s *SiteSpec) QueryLines() int {
	n := 0
	for _, line := range strings.Split(s.Query, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// TemplateLines sums the template sources' line counts.
func (s *SiteSpec) TemplateLines() int {
	n := 0
	for _, t := range s.Templates {
		n += t.Lines()
	}
	return n
}

func mustTemplates(srcs map[string]string) map[string]*template.Template {
	out := map[string]*template.Template{}
	for name, src := range srcs {
		out[name] = template.MustParse(name, src)
	}
	return out
}

// BibliographySpec is the Sec. 3.1 homepage site: the Fig. 3 query and
// Fig. 7 templates.
func BibliographySpec() *SiteSpec {
	return &SiteSpec{
		Name: "homepage",
		Query: `INPUT BIBTEX
CREATE RootPage(), AbstractsPage()
LINK RootPage() -> "AbstractsPage" -> AbstractsPage()
WHERE Publications(x), x -> l -> v
CREATE PaperPresentation(x), AbstractPage(x)
LINK AbstractPage(x) -> l -> v,
     PaperPresentation(x) -> l -> v,
     PaperPresentation(x) -> "Abstract" -> AbstractPage(x),
     AbstractsPage() -> "Abstract" -> AbstractPage(x)
COLLECT Roots(RootPage())
{
  WHERE l = "year"
  CREATE YearPage(v)
  LINK YearPage(v) -> "Year" -> v,
       YearPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "YearPage" -> YearPage(v)
}
{
  WHERE l = "category"
  CREATE CategoryPage(v)
  LINK CategoryPage(v) -> "Name" -> v,
       CategoryPage(v) -> "Paper" -> PaperPresentation(x),
       RootPage() -> "CategoryPage" -> CategoryPage(v)
}
OUTPUT HomePage`,
		Templates: mustTemplates(map[string]string{
			"RootPage": `<html><head><title>Publications</title></head><body>
<h2>Publications by Year</h2>
<SFMT_UL YearPage ORDER=ascend KEY=Year>
<h2>Publications by Topic</h2>
<SFMT_UL CategoryPage ORDER=ascend KEY=Name>
<p><SFMT AbstractsPage LINK="All abstracts">
</body></html>`,
			"AbstractsPage": `<html><body><h1>Paper Abstracts</h1>
<SFMT_UL Abstract EMBED>
</body></html>`,
			"YearPage": `<html><body><h1>Publications from <SFMT Year></h1>
<SFMT_UL Paper EMBED>
</body></html>`,
			"CategoryPage": `<html><body><h1>Publications on <SFMT Name></h1>
<SFMT_UL Paper EMBED>
</body></html>`,
			"PaperPresentation": `<SIF postscript><SFMT postscript LINK=title><SELSE><SFMT title></SIF>. By <SFMT author DELIM=", ">. <SIF journal><SFMT journal><SELSE><SFMT booktitle></SIF>, <SFMT year>. <SIF Abstract><SFMT Abstract LINK="abstract"></SIF>`,
			"AbstractPage": `<html><body><h1><SFMT title></h1>
<p><SFMT abstract>
</body></html>`,
		}),
		EmbedOnly:      map[string]bool{"PaperPresentation": true},
		Index:          "RootPage",
		Root:           "RootPage",
		RootCollection: "Roots",
	}
}

// ArticleSpec is the CNN-style site. sportsOnly builds the paper's
// "sports only" variant: the same structure and the same templates,
// derived from the original query by two extra predicates in one
// where clause (Sec. 5.1).
func ArticleSpec(sportsOnly bool) *SiteSpec {
	extra := ""
	name := "cnn"
	if sportsOnly {
		// The two extra predicates of the paper's sports-only query.
		extra = `, x -> "section" -> s2, s2 = "sports"`
		name = "cnn-sports"
	}
	spec := &SiteSpec{
		Name: name,
		Query: fmt.Sprintf(`INPUT CNN
CREATE FrontPage()
COLLECT Roots(FrontPage())
WHERE Articles(x), x -> "section" -> s%s
CREATE ArticlePage(x), SectionPage(s)
LINK SectionPage(s) -> "Section" -> s,
     SectionPage(s) -> "Story" -> ArticlePage(x),
     SectionPage(s) -> "StoryCount" -> COUNT(x),
     FrontPage() -> "SectionPage" -> SectionPage(s)
{
  WHERE x -> a -> v, a in {"title", "byline", "date", "body", "image"}
  LINK ArticlePage(x) -> a -> v
}
{
  WHERE x -> "related" -> r, Articles(r)
  LINK ArticlePage(x) -> "Related" -> ArticlePage(r)
}
OUTPUT Site`, extra),
		Templates: mustTemplates(map[string]string{
			"FrontPage": `<html><head><title>News</title></head><body><h1>Today's News</h1>
<SFMT_UL SectionPage ORDER=ascend KEY=Section>
</body></html>`,
			"SectionPage": `<html><body><h1><SFMT Section> (<SFMT StoryCount> stories)</h1>
<SFMT_UL Story ORDER=ascend KEY=title>
</body></html>`,
			"ArticlePage": `<html><body><h1><SFMT title></h1>
<p><i>By <SFMT byline>, <SFMT date></i></p>
<SIF image><SFMT image></SIF>
<p><SFMT body></p>
<SIF Related><h3>Related stories</h3><SFMT_UL Related></SIF>
</body></html>`,
		}),
		Index:          "FrontPage",
		Root:           "FrontPage",
		RootCollection: "Roots",
	}
	return spec
}

// OrgQuery is the organization site's definition query over the
// mediated warehouse of the five sources. It is shared verbatim by the
// internal and external versions: the external site differs only in
// its templates, exactly as in the paper ("no new queries were
// written for that site").
const OrgQuery = `INPUT Org
CREATE HomePage(), PeopleIndex(), ProjectIndex()
LINK HomePage() -> "People" -> PeopleIndex(),
     HomePage() -> "Projects" -> ProjectIndex()
COLLECT Roots(HomePage())
{
  WHERE People(p), p -> l -> v
  CREATE PersonPage(p)
  LINK PersonPage(p) -> l -> v,
       PeopleIndex() -> "Person" -> PersonPage(p)
}
{
  WHERE People(p), p -> "dept" -> di, Departments(d), d -> "ident" -> di
  CREATE DeptPage(d), PersonPage(p)
  LINK DeptPage(d) -> "Member" -> PersonPage(p),
       PersonPage(p) -> "Dept" -> DeptPage(d),
       HomePage() -> "Department" -> DeptPage(d)
  {
    WHERE d -> m -> w, m in {"name", "director"}
    LINK DeptPage(d) -> m -> w
  }
}
{
  WHERE Projects(j), j -> l2 -> v2
  CREATE ProjectPage(j)
  LINK ProjectPage(j) -> l2 -> v2,
       ProjectIndex() -> "Project" -> ProjectPage(j)
}
{
  WHERE Projects(j2), j2 -> "member" -> pi, People(p2), p2 -> "ident" -> pi
  LINK ProjectPage(j2) -> "MemberPage" -> PersonPage(p2)
}
OUTPUT OrgSite`

// OrgSpec builds the organization site spec. The external version
// replaces five templates: person pages hide phone/office and
// proprietary flags, project pages hide sponsors, and the indexes
// hide proprietary people — the same site graph serves both versions.
func OrgSpec(external bool) *SiteSpec {
	personTpl := `<html><body><h1><SFMT name></h1>
<p>Office: <SFMT office>. Phone: <SIF phone><SFMT phone><SELSE>n/a</SIF>.</p>
<p>Department: <SFMT Dept LINK="department page"></p>
<SIF proprietary><p><b>[internal] proprietary project member</b></p></SIF>
</body></html>`
	projectTpl := `<html><body><h1><SFMT name></h1>
<SIF synopsis><p><SFMT synopsis></p></SIF>
<SIF sponsor><p>Sponsored by <SFMT sponsor></p></SIF>
<h3>Members</h3><SFMT_UL MemberPage>
</body></html>`
	peopleIdx := `<html><body><h1>People</h1><SFMT_UL Person ORDER=ascend KEY=name></body></html>`
	homeTpl := `<html><body><h1>Research</h1>
<p><SFMT People LINK="People">, <SFMT Projects LINK="Projects"></p>
<h3>Departments</h3><SFMT_UL Department ORDER=ascend KEY=name>
</body></html>`
	deptTpl := `<html><body><h1><SFMT name></h1>
<h3>Members</h3><SFMT_UL Member ORDER=ascend KEY=name>
</body></html>`
	name := "org-internal"
	if external {
		name = "org-external"
		// The five changed templates of the external version.
		personTpl = `<html><body><h1><SFMT name></h1>
<p>Department: <SFMT Dept LINK="department page"></p>
</body></html>`
		projectTpl = `<html><body><h1><SFMT name></h1>
<SIF synopsis><p><SFMT synopsis></p></SIF>
<h3>Members</h3><SFMT_UL MemberPage>
</body></html>`
		peopleIdx = `<html><body><h1>People (public directory)</h1><SFMT_UL Person ORDER=ascend KEY=name></body></html>`
		homeTpl = `<html><body><h1>Research (public)</h1>
<p><SFMT People LINK="People">, <SFMT Projects LINK="Projects"></p>
<h3>Departments</h3><SFMT_UL Department ORDER=ascend KEY=name>
</body></html>`
		deptTpl = `<html><body><h1><SFMT name></h1></body></html>`
	}
	return &SiteSpec{
		Name:  name,
		Query: OrgQuery,
		Templates: mustTemplates(map[string]string{
			"HomePage":     homeTpl,
			"PeopleIndex":  peopleIdx,
			"ProjectIndex": `<html><body><h1>Projects</h1><SFMT_UL Project ORDER=ascend KEY=name></body></html>`,
			"PersonPage":   personTpl,
			"ProjectPage":  projectTpl,
			"DeptPage":     deptTpl,
		}),
		Index:          "HomePage",
		Root:           "HomePage",
		RootCollection: "Roots",
	}
}
