// Package workload generates the synthetic equivalents of the paper's
// data sources, per DESIGN.md's substitution table: BibTeX
// bibliographies (the homepage sites), a CNN-style article corpus
// (~300 articles wrapped from HTML in the paper's demo), and an
// AT&T-Research-style organization fed by five sources. Generators are
// deterministic for a given seed so experiments are reproducible. The
// package also carries the site-definition queries and HTML templates
// for each workload, so examples and benchmarks share one spec.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"strudel/internal/graph"
)

var (
	firstNames = []string{"Mary", "Dan", "Alon", "Daniela", "Jaewoo", "Norman", "Ann", "Bo", "Cy", "Dee", "Eve", "Flo", "Gus", "Hal", "Ida", "Jo"}
	lastNames  = []string{"Fernandez", "Suciu", "Levy", "Florescu", "Kang", "Ramsey", "Adams", "Baker", "Chen", "Dietz", "Evans", "Ford", "Gray", "Hill", "Ito", "Jones"}
	categories = []string{"Semistructured Data", "Programming Languages", "Query Optimization", "Web Sites", "Data Integration", "Architecture Specifications", "Networks", "Verification"}
	venues     = []string{"SIGMOD", "VLDB", "ICDE", "PODS", "ICDT", "WWW"}
	journals   = []string{"TODS", "TOPLAS", "VLDB Journal", "SIGMOD Record"}
	words      = []string{"optimizing", "declarative", "semistructured", "queries", "graphs", "management", "incremental", "views", "schemas", "sites", "integration", "wrappers", "templates", "paths", "regular", "expressions"}
)

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func pick(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }

func titleOf(rng *rand.Rand) string {
	n := 3 + rng.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = pick(rng, words)
	}
	parts[0] = strings.ToUpper(parts[0][:1]) + parts[0][1:]
	return strings.Join(parts, " ")
}

func personName(rng *rand.Rand) string {
	return pick(rng, firstNames) + " " + pick(rng, lastNames)
}

// Bibliography generates a publication data graph of n entries with
// the paper's irregularities: articles have journal (and sometimes
// month/volume), inproceedings have booktitle, ~10% lack an abstract,
// ~15% lack PostScript, author counts vary, category counts vary.
func Bibliography(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("BIBTEX")
	g.DeclareCollection("Publications")
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("pub%d", i)
		oid := g.NewNode(key)
		g.AddToCollection("Publications", graph.NodeValue(oid))
		g.AddEdge(oid, "title", graph.Str(titleOf(rng)))
		for a := 0; a < 1+rng.Intn(3); a++ {
			g.AddEdge(oid, "author", graph.Str(personName(rng)))
		}
		year := int64(1988 + rng.Intn(10))
		g.AddEdge(oid, "year", graph.Int(year))
		if rng.Intn(2) == 0 {
			g.AddEdge(oid, "pub-type", graph.Str("article"))
			g.AddEdge(oid, "journal", graph.Str(pick(rng, journals)))
			if rng.Intn(3) == 0 {
				g.AddEdge(oid, "month", graph.Str("May"))
				g.AddEdge(oid, "volume", graph.Str(fmt.Sprintf("%d (%d)", rng.Intn(30), rng.Intn(4)+1)))
			}
		} else {
			g.AddEdge(oid, "pub-type", graph.Str("inproceedings"))
			g.AddEdge(oid, "booktitle", graph.Str("Proc. of "+pick(rng, venues)))
		}
		if rng.Intn(10) != 0 {
			g.AddEdge(oid, "abstract", graph.File(fmt.Sprintf("abstracts/%s.txt", key), graph.FileText))
		}
		if rng.Intn(7) != 0 {
			g.AddEdge(oid, "postscript", graph.File(fmt.Sprintf("papers/%s.ps.gz", key), graph.FilePostScript))
		}
		for c := 0; c < 1+rng.Intn(2); c++ {
			g.AddEdge(oid, "category", graph.Str(pick(rng, categories)))
		}
		if rng.Intn(12) == 0 {
			g.AddEdge(oid, "proprietary", graph.Bool(true))
		}
	}
	return g
}

// BibliographyBibTeX renders a bibliography as BibTeX source for
// wrapper benchmarks.
func BibliographyBibTeX(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for i := 0; i < n; i++ {
		kind := "article"
		extra := fmt.Sprintf("  journal = {%s},\n", pick(rng, journals))
		if rng.Intn(2) == 1 {
			kind = "inproceedings"
			extra = fmt.Sprintf("  booktitle = {Proc. of %s},\n", pick(rng, venues))
		}
		fmt.Fprintf(&sb, "@%s{pub%d,\n  title = {%s},\n  author = {%s and %s},\n  year = %d,\n%s  category = {%s},\n}\n\n",
			kind, i, titleOf(rng), personName(rng), personName(rng),
			1988+rng.Intn(10), extra, pick(rng, categories))
	}
	return sb.String()
}

// Sections of the article corpus; "sports" drives the sports-only
// variant of the CNN experiment.
var Sections = []string{"world", "us", "politics", "sports", "weather", "showbiz", "tech"}

// Articles generates a CNN-style corpus: n articles with title,
// byline, date, section(s), body, optional image and related links —
// one article may appear in several sections, matching the paper's
// observation that one article appears on multiple pages.
func Articles(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("CNN")
	g.DeclareCollection("Articles")
	var oids []graph.OID
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("art%d", i)
		oid := g.NewNode(key)
		oids = append(oids, oid)
		g.AddToCollection("Articles", graph.NodeValue(oid))
		g.AddEdge(oid, "title", graph.Str(titleOf(rng)))
		g.AddEdge(oid, "byline", graph.Str(personName(rng)))
		g.AddEdge(oid, "date", graph.Str(fmt.Sprintf("1997-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))))
		nsec := 1 + rng.Intn(2)
		for s := 0; s < nsec; s++ {
			g.AddEdge(oid, "section", graph.Str(pick(rng, Sections)))
		}
		g.AddEdge(oid, "body", graph.Str(titleOf(rng)+". "+titleOf(rng)+"."))
		if rng.Intn(3) != 0 {
			g.AddEdge(oid, "image", graph.File(fmt.Sprintf("images/%s.gif", key), graph.FileImage))
		}
	}
	// Related-article links (within the corpus).
	for _, oid := range oids {
		for r := 0; r < rng.Intn(3); r++ {
			other := oids[rng.Intn(len(oids))]
			if other != oid {
				g.AddEdge(oid, "related", graph.NodeValue(other))
			}
		}
	}
	return g
}

// OrgSources is the five-source input of the organization workload,
// mirroring the AT&T site's sources: two relational tables (people,
// departments), a structured project file, a BibTeX bibliography, and
// existing HTML pages.
type OrgSources struct {
	PeopleCSV      string
	DepartmentsCSV string
	ProjectsTxt    string
	BibTeX         string
	HTMLPages      map[string]string
}

// Organization generates an organization of the given size. About the
// paper's scale: people≈400 for the AT&T internal site.
func Organization(people, projects, departments int, seed int64) *OrgSources {
	rng := rand.New(rand.NewSource(seed))
	src := &OrgSources{HTMLPages: map[string]string{}}

	// Cross-source references are plain identifier columns: each source
	// is wrapped independently, so references resolve in the
	// site-definition query by joining on the ident attribute.
	var depts strings.Builder
	depts.WriteString("id,ident,name,director\n")
	for d := 0; d < departments; d++ {
		fmt.Fprintf(&depts, "dept%d,dept%d,%s Research Department,p%d\n", d, d, titleCase(pick(rng, words)), rng.Intn(people))
	}
	src.DepartmentsCSV = depts.String()

	var ppl strings.Builder
	ppl.WriteString("id,ident,name,phone,office,dept,proprietary\n")
	for p := 0; p < people; p++ {
		phone := ""
		if rng.Intn(10) != 0 { // some people lack phone entries
			phone = fmt.Sprintf("973-360-%04d", rng.Intn(10000))
		}
		proprietary := ""
		if rng.Intn(15) == 0 {
			proprietary = "true"
		}
		fmt.Fprintf(&ppl, "p%d,p%d,%s,%s,B-%03d,dept%d,%s\n",
			p, p, personName(rng), phone, rng.Intn(400), rng.Intn(departments), proprietary)
	}
	src.PeopleCSV = ppl.String()

	var proj strings.Builder
	for j := 0; j < projects; j++ {
		fmt.Fprintf(&proj, "id: proj%d\nin: Projects\nident: proj%d\nname: %s\n", j, j, titleCase(titleOf(rng)))
		if rng.Intn(5) != 0 { // some projects omit the synopsis
			fmt.Fprintf(&proj, "synopsis: %s\n", titleOf(rng))
		}
		if rng.Intn(3) == 0 { // not all projects are sponsored
			fmt.Fprintf(&proj, "sponsor: %s Fund\n", titleCase(pick(rng, words)))
		}
		for m := 0; m < 1+rng.Intn(4); m++ {
			fmt.Fprintf(&proj, "member: p%d\n", rng.Intn(people))
		}
		proj.WriteString("\n")
	}
	src.ProjectsTxt = proj.String()

	src.BibTeX = BibliographyBibTeX(people/2, seed+1)

	for h := 0; h < departments; h++ {
		name := fmt.Sprintf("dept%d.html", h)
		src.HTMLPages[name] = fmt.Sprintf(
			"<html><head><title>Department %d</title></head><body><h1>Welcome</h1><p>%s</p><a href=%q>next</a></body></html>",
			h, titleOf(rng), fmt.Sprintf("dept%d.html", (h+1)%departments))
	}
	return src
}
