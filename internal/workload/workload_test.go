package workload

import (
	"testing"

	"strudel/internal/graph"
	"strudel/internal/struql"
	"strudel/internal/wrapper"
)

func TestBibliographyDeterministicAndIrregular(t *testing.T) {
	g1 := Bibliography(50, 7)
	g2 := Bibliography(50, 7)
	if g1.DumpString() != g2.DumpString() {
		t.Error("generator not deterministic")
	}
	if len(g1.Collection("Publications")) != 50 {
		t.Fatalf("pubs = %d", len(g1.Collection("Publications")))
	}
	// Irregularity: some pubs have journal, others booktitle; some
	// lack abstracts.
	var journals, booktitles, noAbstract int
	for _, m := range g1.Collection("Publications") {
		if _, ok := g1.First(m.OID(), "journal"); ok {
			journals++
		}
		if _, ok := g1.First(m.OID(), "booktitle"); ok {
			booktitles++
		}
		if _, ok := g1.First(m.OID(), "abstract"); !ok {
			noAbstract++
		}
	}
	if journals == 0 || booktitles == 0 || journals+booktitles != 50 {
		t.Errorf("journals=%d booktitles=%d", journals, booktitles)
	}
	if noAbstract == 0 {
		t.Error("expected some missing abstracts")
	}
	// A different seed gives a different graph.
	if Bibliography(50, 8).DumpString() == g1.DumpString() {
		t.Error("seed ignored")
	}
}

func TestBibliographyBibTeXParses(t *testing.T) {
	src := BibliographyBibTeX(20, 3)
	g := graph.New("BIBTEX")
	if err := (wrapper.BibTeX{}).Wrap(g, "gen.bib", src); err != nil {
		t.Fatal(err)
	}
	if len(g.Collection("Publications")) != 20 {
		t.Errorf("wrapped pubs = %d", len(g.Collection("Publications")))
	}
}

func TestArticlesShape(t *testing.T) {
	g := Articles(100, 11)
	arts := g.Collection("Articles")
	if len(arts) != 100 {
		t.Fatalf("articles = %d", len(arts))
	}
	sports := 0
	for _, a := range arts {
		for _, s := range g.OutLabel(a.OID(), "section") {
			if s == graph.Str("sports") {
				sports++
				break
			}
		}
	}
	if sports == 0 || sports == 100 {
		t.Errorf("sports articles = %d", sports)
	}
}

func TestOrganizationSourcesWrap(t *testing.T) {
	src := Organization(40, 10, 4, 5)
	g := graph.New("Org")
	if err := (wrapper.CSV{}).Wrap(g, "people.csv", src.PeopleCSV); err != nil {
		t.Fatalf("people: %v", err)
	}
	if err := (wrapper.CSV{}).Wrap(g, "departments.csv", src.DepartmentsCSV); err != nil {
		t.Fatalf("departments: %v", err)
	}
	if err := (wrapper.Structured{}).Wrap(g, "projects.txt", src.ProjectsTxt); err != nil {
		t.Fatalf("projects: %v", err)
	}
	if err := (wrapper.BibTeX{}).Wrap(g, "bib.bib", src.BibTeX); err != nil {
		t.Fatalf("bibtex: %v", err)
	}
	for name, html := range src.HTMLPages {
		if err := (wrapper.HTML{}).Wrap(g, name, html); err != nil {
			t.Fatalf("html %s: %v", name, err)
		}
	}
	if len(g.Collection("People")) != 40 {
		t.Errorf("people = %d", len(g.Collection("People")))
	}
	if len(g.Collection("Projects")) != 10 {
		t.Errorf("projects = %d", len(g.Collection("Projects")))
	}
	if len(g.Collection("Departments")) != 4 {
		t.Errorf("departments = %d", len(g.Collection("Departments")))
	}
	if len(g.Collection("Pages")) != 4 {
		t.Errorf("html pages = %d", len(g.Collection("Pages")))
	}
}

func TestSpecsParse(t *testing.T) {
	for _, spec := range []*SiteSpec{
		BibliographySpec(), ArticleSpec(false), ArticleSpec(true),
		OrgSpec(false), OrgSpec(true),
	} {
		if _, err := struql.Parse(spec.Query); err != nil {
			t.Errorf("spec %s query: %v", spec.Name, err)
		}
		if spec.QueryLines() == 0 || spec.TemplateLines() == 0 || len(spec.Templates) == 0 {
			t.Errorf("spec %s metrics empty", spec.Name)
		}
	}
}

func TestSportsOnlyDiffersByTwoPredicates(t *testing.T) {
	base := ArticleSpec(false)
	sports := ArticleSpec(true)
	bq, _ := struql.Parse(base.Query)
	sq, _ := struql.Parse(sports.Query)
	// The variant adds exactly two conditions (an edge and an
	// equality) to the main where clause, as in the paper.
	bw := len(bq.Root.Children[0].Where)
	sw := len(sq.Root.Children[0].Where)
	if sw-bw != 2 {
		t.Errorf("extra predicates = %d, want 2", sw-bw)
	}
	// The templates are shared verbatim.
	for name, tb := range base.Templates {
		if sports.Templates[name].Source != tb.Source {
			t.Errorf("template %s differs between variants", name)
		}
	}
}

func TestOrgVersionsShareQuery(t *testing.T) {
	in, ex := OrgSpec(false), OrgSpec(true)
	if in.Query != ex.Query {
		t.Error("internal and external versions must share the query")
	}
	changed := 0
	for name, ti := range in.Templates {
		if ex.Templates[name].Source != ti.Source {
			changed++
		}
	}
	if changed != 5 {
		t.Errorf("changed templates = %d, want 5 (as in the paper)", changed)
	}
}
