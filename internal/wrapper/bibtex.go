package wrapper

import (
	"fmt"
	"strconv"
	"strings"

	"strudel/internal/graph"
)

// BibTeX converts BibTeX bibliography files into data graphs, the main
// data source for the paper's homepage sites (Sec. 3.1, Sec. 5.1). One
// object per entry joins the Publications collection; the entry type
// becomes the pub-type attribute, the citation key names the object,
// and the author field is split into one author edge per author so the
// site graph can enumerate them. The abstract and postscript fields
// become typed file atoms, matching the Fig. 2 type directives.
//
// The data model has no ordered lists; with OrderedAuthors set, the
// wrapper applies the paper's order-preservation idiom (Sec. 5.2:
// "associating an integer key with each author"): each author becomes
// a nested object {name, key} so templates can render authors in
// bibliography order via ORDER=ascend KEY=key.
type BibTeX struct {
	OrderedAuthors bool
}

// Name implements Wrapper.
func (BibTeX) Name() string { return "bibtex" }

// Wrap implements Wrapper.
func (b BibTeX) Wrap(g *graph.Graph, sourceName, src string) error {
	p := &bibParser{src: src, line: 1}
	g.DeclareCollection("Publications")
	for {
		entry, err := p.nextEntry()
		if err != nil {
			return err
		}
		if entry == nil {
			return nil
		}
		if err := entry.addTo(g, b.OrderedAuthors); err != nil {
			return err
		}
	}
}

type bibEntry struct {
	kind   string // article, inproceedings, ...
	key    string // citation key
	fields []bibField
}

type bibField struct {
	name  string
	value string
}

func (e *bibEntry) addTo(g *graph.Graph, orderedAuthors bool) error {
	oid := g.NewNode(e.key)
	g.AddToCollection("Publications", graph.NodeValue(oid))
	if err := g.AddEdge(oid, "pub-type", graph.Str(strings.ToLower(e.kind))); err != nil {
		return err
	}
	for _, f := range e.fields {
		name := strings.ToLower(f.name)
		switch name {
		case "author", "editor":
			for i, a := range splitAuthors(f.value) {
				if orderedAuthors {
					sub := g.NewNode("")
					if err := g.AddEdge(sub, "name", graph.Str(a)); err != nil {
						return err
					}
					if err := g.AddEdge(sub, "key", graph.Int(int64(i+1))); err != nil {
						return err
					}
					if err := g.AddEdge(oid, name, graph.NodeValue(sub)); err != nil {
						return err
					}
					continue
				}
				if err := g.AddEdge(oid, name, graph.Str(a)); err != nil {
					return err
				}
			}
		case "year":
			if n, err := strconv.ParseInt(strings.TrimSpace(f.value), 10, 64); err == nil {
				if err := g.AddEdge(oid, "year", graph.Int(n)); err != nil {
					return err
				}
				continue
			}
			if err := g.AddEdge(oid, "year", graph.Str(f.value)); err != nil {
				return err
			}
		case "abstract":
			if err := g.AddEdge(oid, "abstract", graph.File(f.value, graph.FileText)); err != nil {
				return err
			}
		case "postscript", "ps":
			if err := g.AddEdge(oid, "postscript", graph.File(f.value, graph.FilePostScript)); err != nil {
				return err
			}
		case "url":
			if err := g.AddEdge(oid, "url", graph.URL(f.value)); err != nil {
				return err
			}
		case "category", "keywords":
			// Multi-valued, comma- or semicolon-separated.
			for _, c := range splitList(f.value) {
				if err := g.AddEdge(oid, "category", graph.Str(c)); err != nil {
					return err
				}
			}
		default:
			if err := g.AddEdge(oid, name, graph.Str(f.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitAuthors splits a BibTeX author list on the "and" keyword.
func splitAuthors(s string) []string {
	parts := strings.Split(s, " and ")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.Join(strings.Fields(p), " ")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitList(s string) []string {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' })
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// bibParser is a small recursive-descent parser for the subset of
// BibTeX the paper's wrappers handled: @type{key, field = value, ...}
// with brace- or quote-delimited values, numeric literals, and the
// standard month abbreviations. @comment, @preamble and @string blocks
// are skipped (string macros are not expanded).
type bibParser struct {
	src  string
	pos  int
	line int
}

var bibMonths = map[string]string{
	"jan": "January", "feb": "February", "mar": "March", "apr": "April",
	"may": "May", "jun": "June", "jul": "July", "aug": "August",
	"sep": "September", "oct": "October", "nov": "November", "dec": "December",
}

func (p *bibParser) errf(format string, args ...any) error {
	return fmt.Errorf("bibtex: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *bibParser) skipToAt() bool {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '@' {
			return true
		}
		if c == '\n' {
			p.line++
		}
		p.pos++
	}
	return false
}

func (p *bibParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\n' {
			p.line++
			p.pos++
		} else if c == ' ' || c == '\t' || c == '\r' {
			p.pos++
		} else {
			return
		}
	}
}

func (p *bibParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c == '-' || c == ':' || c == '.' ||
			c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *bibParser) nextEntry() (*bibEntry, error) {
	for {
		if !p.skipToAt() {
			return nil, nil
		}
		p.pos++ // '@'
		kind := strings.ToLower(p.ident())
		if kind == "" {
			return nil, p.errf("missing entry type after '@'")
		}
		p.skipSpace()
		if kind == "comment" || kind == "preamble" || kind == "string" {
			if err := p.skipBalanced(); err != nil {
				return nil, err
			}
			continue
		}
		if p.pos >= len(p.src) || p.src[p.pos] != '{' && p.src[p.pos] != '(' {
			return nil, p.errf("expected '{' after @%s", kind)
		}
		closer := byte('}')
		if p.src[p.pos] == '(' {
			closer = ')'
		}
		p.pos++
		p.skipSpace()
		key := p.ident()
		if key == "" {
			return nil, p.errf("@%s entry missing citation key", kind)
		}
		entry := &bibEntry{kind: kind, key: key}
		p.skipSpace()
		for p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == closer {
				break // trailing comma
			}
			name := p.ident()
			if name == "" {
				return nil, p.errf("expected field name in @%s{%s}", kind, key)
			}
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '=' {
				return nil, p.errf("expected '=' after field %q", name)
			}
			p.pos++
			p.skipSpace()
			val, err := p.fieldValue()
			if err != nil {
				return nil, err
			}
			entry.fields = append(entry.fields, bibField{name: name, value: val})
			p.skipSpace()
		}
		if p.pos >= len(p.src) || p.src[p.pos] != closer {
			return nil, p.errf("unterminated @%s{%s}", kind, key)
		}
		p.pos++
		return entry, nil
	}
}

// fieldValue parses a brace-group, quoted string, number, or month
// abbreviation. Adjacent values joined by '#' are concatenated.
func (p *bibParser) fieldValue() (string, error) {
	var parts []string
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return "", p.errf("unterminated field value")
		}
		switch c := p.src[p.pos]; {
		case c == '{':
			v, err := p.braceGroup()
			if err != nil {
				return "", err
			}
			parts = append(parts, v)
		case c == '"':
			v, err := p.quoted()
			if err != nil {
				return "", err
			}
			parts = append(parts, v)
		case c >= '0' && c <= '9':
			start := p.pos
			for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
				p.pos++
			}
			parts = append(parts, p.src[start:p.pos])
		default:
			word := p.ident()
			if word == "" {
				return "", p.errf("malformed field value")
			}
			if m, ok := bibMonths[strings.ToLower(word)]; ok {
				parts = append(parts, m)
			} else {
				parts = append(parts, word) // unexpanded macro name
			}
		}
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '#' {
			p.pos++
			continue
		}
		return cleanBibText(strings.Join(parts, "")), nil
	}
}

// braceGroup reads a balanced {...} group, stripping the outer braces
// and keeping inner text.
func (p *bibParser) braceGroup() (string, error) {
	depth := 0
	start := p.pos + 1
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				v := p.src[start:p.pos]
				p.pos++
				return v, nil
			}
		case '\n':
			p.line++
		}
		p.pos++
	}
	return "", p.errf("unterminated brace group")
}

func (p *bibParser) quoted() (string, error) {
	p.pos++ // opening quote
	start := p.pos
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '"':
			v := p.src[start:p.pos]
			p.pos++
			return v, nil
		case '\n':
			p.line++
		}
		p.pos++
	}
	return "", p.errf("unterminated quoted value")
}

// skipBalanced skips a {...} or (...) block after @comment etc.
func (p *bibParser) skipBalanced() error {
	if p.pos >= len(p.src) {
		return nil
	}
	open := p.src[p.pos]
	var close byte
	switch open {
	case '{':
		close = '}'
	case '(':
		close = ')'
	default:
		return nil // line comment style; nothing to skip
	}
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		case '\n':
			p.line++
		}
		p.pos++
	}
	return p.errf("unterminated @comment/@string block")
}

// cleanBibText removes remaining TeX braces and collapses whitespace.
func cleanBibText(s string) string {
	s = strings.ReplaceAll(s, "{", "")
	s = strings.ReplaceAll(s, "}", "")
	s = strings.ReplaceAll(s, "~", " ")
	return strings.Join(strings.Fields(s), " ")
}
