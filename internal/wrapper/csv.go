package wrapper

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"strudel/internal/graph"
)

// CSV wraps relational tables exported as CSV, standing in for the
// "small relational databases that contain personnel and
// organizational data" of the paper's AT&T site. The first record is
// the header; each following record becomes one object in a collection
// named after the source. Empty cells are omitted (they become the
// missing attributes the semistructured model is built for). Column
// values are typed by inference: integer, float, boolean, URL, else
// string. A column named "id" names the object so other sources can
// reference it; a column name ending in "_ref" makes a node reference
// by object name.
type CSV struct{}

// Name implements Wrapper.
func (CSV) Name() string { return "csv" }

// Wrap implements Wrapper.
func (CSV) Wrap(g *graph.Graph, sourceName, src string) error {
	r := csv.NewReader(strings.NewReader(src))
	r.TrimLeadingSpace = true
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	if len(records) == 0 {
		return fmt.Errorf("csv: source %q is empty", sourceName)
	}
	header := records[0]
	coll := collectionName(sourceName)
	g.DeclareCollection(coll)
	type ref struct {
		from  graph.OID
		label string
		name  string
	}
	var refs []ref
	for rowNum, rec := range records[1:] {
		if len(rec) > len(header) {
			return fmt.Errorf("csv: row %d of %q has %d fields, header has %d", rowNum+2, sourceName, len(rec), len(header))
		}
		name := ""
		for i, cell := range rec {
			if strings.EqualFold(header[i], "id") {
				name = strings.TrimSpace(cell)
			}
		}
		oid := g.NewNode(name)
		g.AddToCollection(coll, graph.NodeValue(oid))
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if cell == "" || strings.EqualFold(header[i], "id") {
				continue
			}
			col := header[i]
			if strings.HasSuffix(col, "_ref") {
				refs = append(refs, ref{from: oid, label: strings.TrimSuffix(col, "_ref"), name: cell})
				continue
			}
			if err := g.AddEdge(oid, col, inferValue(cell)); err != nil {
				return err
			}
		}
	}
	for _, rf := range refs {
		target, ok := g.NodeByName(rf.name)
		if !ok {
			return fmt.Errorf("csv: %s reference to unknown object %q", rf.label, rf.name)
		}
		if err := g.AddEdge(rf.from, rf.label, graph.NodeValue(target)); err != nil {
			return err
		}
	}
	return nil
}

// collectionName derives a collection name from a source name:
// "people.csv" → "People".
func collectionName(sourceName string) string {
	base := sourceName
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	if base == "" {
		return "Rows"
	}
	return strings.ToUpper(base[:1]) + base[1:]
}

// inferValue types a cell: int, float, bool, URL, else string.
func inferValue(cell string) graph.Value {
	if n, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return graph.Int(n)
	}
	if f, err := strconv.ParseFloat(cell, 64); err == nil {
		return graph.Float(f)
	}
	switch strings.ToLower(cell) {
	case "true", "false":
		b, _ := strconv.ParseBool(cell)
		return graph.Bool(b)
	}
	if strings.HasPrefix(cell, "http://") || strings.HasPrefix(cell, "https://") {
		return graph.URL(cell)
	}
	return graph.Str(cell)
}
