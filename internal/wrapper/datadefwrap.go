package wrapper

import (
	"strudel/internal/datadef"
	"strudel/internal/graph"
)

// DataDef wraps files already in STRUDEL's own data-definition
// language — the "other information ... stored in files in STRUDEL's
// data definition language" of the paper's homepage sites.
type DataDef struct{}

// Name implements Wrapper.
func (DataDef) Name() string { return "datadef" }

// Wrap implements Wrapper.
func (DataDef) Wrap(g *graph.Graph, sourceName, src string) error {
	return datadef.ParseInto(g, src)
}
