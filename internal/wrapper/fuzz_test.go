package wrapper

import (
	"testing"

	"strudel/internal/graph"
)

// FuzzBibTeX asserts the BibTeX parser never panics.
func FuzzBibTeX(f *testing.F) {
	f.Add(sampleBib)
	f.Add(`@misc{k, a = "x" # {y} # 3, month = jan}`)
	f.Add(`@comment{skip} @article(k2, t = {nested {deep}}) trailing`)
	f.Fuzz(func(t *testing.T, src string) {
		_ = BibTeX{}.Wrap(graph.New("g"), "f", src)
		_ = BibTeX{OrderedAuthors: true}.Wrap(graph.New("g"), "f", src)
	})
}

// FuzzHTML asserts the HTML scanner never panics.
func FuzzHTML(f *testing.F) {
	f.Add(sampleHTML)
	f.Add(`<a href=bare>x</a><img src='q'><h1>t`)
	f.Add(`<title>unclosed <script>while(1){}<`)
	f.Fuzz(func(t *testing.T, src string) {
		_ = HTML{}.Wrap(graph.New("g"), "p.html", src)
	})
}

// FuzzXML asserts the XML wrapper never panics.
func FuzzXML(f *testing.F) {
	f.Add(sampleXML)
	f.Add(`<db><o id="a"><x ref="b"/></o><o id="b"/></db>`)
	f.Fuzz(func(t *testing.T, src string) {
		_ = XML{}.Wrap(graph.New("g"), "f.xml", src)
	})
}
