package wrapper

import (
	"strings"

	"strudel/internal/graph"
)

// HTML wraps existing HTML pages into the graph model, the technique
// the paper used to build its CNN demo ("we mapped their HTML pages
// into a data graph containing about 300 articles"). The wrapper is a
// small hand-written tag scanner — no external parser — extracting per
// page: the title, headings, anchors (href plus link text), image
// sources, and the visible text. Each page becomes one object in the
// Pages collection; anchors whose target names another wrapped page
// (by source name) become node references, external ones become URL
// atoms.
type HTML struct{}

// Name implements Wrapper.
func (HTML) Name() string { return "html" }

// Wrap implements Wrapper.
func (HTML) Wrap(g *graph.Graph, sourceName, src string) error {
	doc := scanHTML(src)
	oid := g.NewNode(sourceName)
	g.AddToCollection("Pages", graph.NodeValue(oid))
	if doc.title != "" {
		if err := g.AddEdge(oid, "title", graph.Str(doc.title)); err != nil {
			return err
		}
	}
	for _, h := range doc.headings {
		if err := g.AddEdge(oid, "heading", graph.Str(h)); err != nil {
			return err
		}
	}
	for _, a := range doc.anchors {
		var target graph.Value
		if to, ok := g.NodeByName(a.href); ok {
			target = graph.NodeValue(to)
		} else if strings.Contains(a.href, "://") {
			target = graph.URL(a.href)
		} else {
			// Local reference to a page not wrapped yet: create the
			// placeholder node so a later Wrap call fills it in.
			target = graph.NodeValue(g.NewNode(a.href))
		}
		if err := g.AddEdge(oid, "link", target); err != nil {
			return err
		}
		if a.text != "" && target.IsNode() {
			if err := g.AddEdge(target.OID(), "anchor-text", graph.Str(a.text)); err != nil {
				return err
			}
		}
	}
	for _, img := range doc.images {
		if err := g.AddEdge(oid, "image", graph.File(img, graph.FileImage)); err != nil {
			return err
		}
	}
	if doc.text != "" {
		if err := g.AddEdge(oid, "text", graph.Str(doc.text)); err != nil {
			return err
		}
	}
	return nil
}

type htmlAnchor struct {
	href string
	text string
}

type htmlDoc struct {
	title    string
	headings []string
	anchors  []htmlAnchor
	images   []string
	text     string
}

// scanHTML is a forgiving single-pass tag scanner. It tracks just
// enough state to capture title/heading/anchor text and skips script
// and style contents.
func scanHTML(src string) *htmlDoc {
	doc := &htmlDoc{}
	var textBuf, capture strings.Builder
	capturing := "" // "title", "h", "a"
	var pendingHref string
	skipUntil := "" // closing tag that ends a skipped region
	i := 0
	for i < len(src) {
		if src[i] != '<' {
			j := strings.IndexByte(src[i:], '<')
			if j < 0 {
				j = len(src) - i
			}
			chunk := src[i : i+j]
			if skipUntil == "" {
				if capturing != "" {
					capture.WriteString(chunk)
				}
				textBuf.WriteString(chunk)
			}
			i += j
			continue
		}
		end := strings.IndexByte(src[i:], '>')
		if end < 0 {
			break
		}
		tag := src[i+1 : i+end]
		i += end + 1
		name, attrs := splitTag(tag)
		lower := strings.ToLower(name)
		if skipUntil != "" {
			if lower == skipUntil {
				skipUntil = ""
			}
			continue
		}
		switch lower {
		case "script", "style":
			skipUntil = "/" + lower
		case "title":
			capturing = "title"
			capture.Reset()
		case "/title":
			doc.title = collapse(capture.String())
			capturing = ""
		case "h1", "h2", "h3":
			capturing = "h"
			capture.Reset()
		case "/h1", "/h2", "/h3":
			if h := collapse(capture.String()); h != "" {
				doc.headings = append(doc.headings, h)
			}
			capturing = ""
		case "a":
			pendingHref = attrValue(attrs, "href")
			capturing = "a"
			capture.Reset()
		case "/a":
			if pendingHref != "" {
				doc.anchors = append(doc.anchors, htmlAnchor{href: pendingHref, text: collapse(capture.String())})
			}
			pendingHref = ""
			capturing = ""
		case "img":
			if srcAttr := attrValue(attrs, "src"); srcAttr != "" {
				doc.images = append(doc.images, srcAttr)
			}
		}
	}
	doc.text = collapse(textBuf.String())
	return doc
}

func splitTag(tag string) (name, attrs string) {
	tag = strings.TrimSpace(tag)
	if i := strings.IndexAny(tag, " \t\n\r"); i >= 0 {
		return tag[:i], tag[i+1:]
	}
	return tag, ""
}

// attrValue extracts a (quoted or bare) attribute value.
func attrValue(attrs, name string) string {
	// ASCII-only lowering preserves byte offsets even on invalid
	// UTF-8 (strings.ToLower would substitute multi-byte replacement
	// runes and desynchronize the indexes).
	lb := []byte(attrs)
	for i, c := range lb {
		if 'A' <= c && c <= 'Z' {
			lb[i] = c + 'a' - 'A'
		}
	}
	lower := string(lb)
	idx := 0
	for {
		j := strings.Index(lower[idx:], name)
		if j < 0 {
			return ""
		}
		j += idx
		rest := strings.TrimSpace(attrs[j+len(name):])
		if !strings.HasPrefix(rest, "=") {
			idx = j + len(name)
			continue
		}
		rest = strings.TrimSpace(rest[1:])
		if rest == "" {
			return ""
		}
		if rest[0] == '"' || rest[0] == '\'' {
			q := rest[0]
			if k := strings.IndexByte(rest[1:], q); k >= 0 {
				return rest[1 : 1+k]
			}
			return rest[1:]
		}
		if k := strings.IndexAny(rest, " \t\n\r"); k >= 0 {
			return rest[:k]
		}
		return rest
	}
}

func collapse(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
