package wrapper

import (
	"fmt"
	"strings"

	"strudel/internal/graph"
)

// Structured wraps plain structured files — blank-line-separated
// records of "key: value" lines, the format of the paper's project
// files. Special keys: "id" names the object, "in" lists collections
// (comma-separated), and a key ending in "_ref" references another
// object by name. Repeating a key yields a multi-valued attribute.
type Structured struct{}

// Name implements Wrapper.
func (Structured) Name() string { return "structured" }

// Wrap implements Wrapper.
func (Structured) Wrap(g *graph.Graph, sourceName, src string) error {
	type ref struct {
		from  graph.OID
		label string
		name  string
	}
	var refs []ref
	defaultColl := collectionName(sourceName)
	records := splitRecords(src)
	for recNum, rec := range records {
		var name string
		var colls []string
		var attrs [][2]string
		for _, line := range rec {
			key, val, ok := strings.Cut(line, ":")
			if !ok {
				return fmt.Errorf("structured: record %d of %q: malformed line %q", recNum+1, sourceName, line)
			}
			key = strings.TrimSpace(key)
			val = strings.TrimSpace(val)
			switch key {
			case "id":
				name = val
			case "in":
				for _, c := range strings.Split(val, ",") {
					if c = strings.TrimSpace(c); c != "" {
						colls = append(colls, c)
					}
				}
			default:
				attrs = append(attrs, [2]string{key, val})
			}
		}
		if len(colls) == 0 {
			colls = []string{defaultColl}
		}
		oid := g.NewNode(name)
		for _, c := range colls {
			g.AddToCollection(c, graph.NodeValue(oid))
		}
		for _, kv := range attrs {
			key, val := kv[0], kv[1]
			if strings.HasSuffix(key, "_ref") {
				refs = append(refs, ref{from: oid, label: strings.TrimSuffix(key, "_ref"), name: val})
				continue
			}
			if err := g.AddEdge(oid, key, inferValue(val)); err != nil {
				return err
			}
		}
	}
	for _, rf := range refs {
		target, ok := g.NodeByName(rf.name)
		if !ok {
			return fmt.Errorf("structured: %s reference to unknown object %q", rf.label, rf.name)
		}
		if err := g.AddEdge(rf.from, rf.label, graph.NodeValue(target)); err != nil {
			return err
		}
	}
	return nil
}

// splitRecords splits on blank lines, dropping comment lines (#).
func splitRecords(src string) [][]string {
	var records [][]string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			records = append(records, cur)
			cur = nil
		}
	}
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			flush()
		case strings.HasPrefix(trimmed, "#"):
			// comment
		default:
			cur = append(cur, trimmed)
		}
	}
	flush()
	return records
}
