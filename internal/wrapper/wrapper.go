// Package wrapper implements STRUDEL's source-specific wrappers, which
// translate external data representations into the labeled-graph model
// (paper Sec. 2: "a set of source-specific wrappers translates the
// external representation into the graph model"). The paper's sites
// used wrappers for BibTeX bibliographies, small relational databases,
// structured files with project data, and existing HTML pages; this
// package provides Go equivalents of each.
package wrapper

import "strudel/internal/graph"

// Wrapper converts one external source into a graph.
type Wrapper interface {
	// Name identifies the wrapper kind ("bibtex", "csv", ...).
	Name() string
	// Wrap parses source text into the given graph. The sourceName
	// seeds object naming and collection defaults.
	Wrap(g *graph.Graph, sourceName, src string) error
}

// ByName returns the built-in wrapper for a kind.
func ByName(kind string) (Wrapper, bool) {
	switch kind {
	case "bibtex":
		return BibTeX{}, true
	case "csv":
		return CSV{}, true
	case "structured":
		return Structured{}, true
	case "html":
		return HTML{}, true
	case "datadef":
		return DataDef{}, true
	case "xml":
		return XML{}, true
	default:
		return nil, false
	}
}
