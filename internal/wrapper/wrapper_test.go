package wrapper

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

const sampleBib = `
% a LaTeX-style comment line is just skipped text
@string{toplas = "ACM TOPLAS"}
@comment{this is ignored}

@article{toplas97,
  title = {Specifying Representations of Machine Instructions},
  author = {Norman Ramsey and Mary F. Fernandez},
  year = 1997,
  month = may,
  journal = {Transactions on Programming Languages and Systems},
  volume = {19 (3)},
  abstract = {abstracts/toplas97.txt},
  postscript = {papers/toplas97.ps.gz},
  category = {Architecture Specifications, Programming Languages},
}

@inproceedings{icde98,
  title = "Optimizing Regular Path Expressions Using Graph Schemas",
  author = {Mary F. Fernandez and Dan Suciu},
  year = {1998},
  booktitle = {Proc. of ICDE},
  abstract = {abstracts/icde98.txt},
  postscript = {papers/icde98.ps.gz},
  category = {Semistructured Data; Programming Languages}
}
`

func TestBibTeXWrap(t *testing.T) {
	g := graph.New("BIBTEX")
	if err := (BibTeX{}).Wrap(g, "refs.bib", sampleBib); err != nil {
		t.Fatal(err)
	}
	pubs := g.Collection("Publications")
	if len(pubs) != 2 {
		t.Fatalf("Publications = %d, want 2", len(pubs))
	}
	p1, ok := g.NodeByName("toplas97")
	if !ok {
		t.Fatal("toplas97 missing")
	}
	if v, _ := g.First(p1, "pub-type"); v != graph.Str("article") {
		t.Errorf("pub-type = %v", v)
	}
	authors := g.OutLabel(p1, "author")
	if len(authors) != 2 || authors[0] != graph.Str("Norman Ramsey") {
		t.Errorf("authors = %v", authors)
	}
	if y, _ := g.First(p1, "year"); y != graph.Int(1997) {
		t.Errorf("year = %v", y)
	}
	if m, _ := g.First(p1, "month"); m != graph.Str("May") {
		t.Errorf("month = %v", m)
	}
	if ps, _ := g.First(p1, "postscript"); ps.FileType() != graph.FilePostScript {
		t.Errorf("postscript = %v", ps)
	}
	if abs, _ := g.First(p1, "abstract"); abs.FileType() != graph.FileText {
		t.Errorf("abstract = %v", abs)
	}
	cats := g.OutLabel(p1, "category")
	if len(cats) != 2 {
		t.Errorf("categories = %v", cats)
	}
	// Irregularity: only icde98 has booktitle; only toplas97 journal.
	p2, _ := g.NodeByName("icde98")
	if _, ok := g.First(p2, "journal"); ok {
		t.Error("icde98 should have no journal")
	}
	if _, ok := g.First(p2, "booktitle"); !ok {
		t.Error("icde98 should have booktitle")
	}
}

func TestBibTeXQuotedAndConcat(t *testing.T) {
	src := `@misc{k1, note = "part one" # " and two", year = 1999}`
	g := graph.New("g")
	if err := (BibTeX{}).Wrap(g, "x", src); err != nil {
		t.Fatal(err)
	}
	n, _ := g.NodeByName("k1")
	if v, _ := g.First(n, "note"); v != graph.Str("part one and two") {
		t.Errorf("note = %v", v)
	}
}

func TestBibTeXParenDelimiters(t *testing.T) {
	src := `@misc(k2, title = {Paren Style})`
	g := graph.New("g")
	if err := (BibTeX{}).Wrap(g, "x", src); err != nil {
		t.Fatal(err)
	}
	n, _ := g.NodeByName("k2")
	if v, _ := g.First(n, "title"); v != graph.Str("Paren Style") {
		t.Errorf("title = %v", v)
	}
}

func TestBibTeXNestedBraces(t *testing.T) {
	src := `@misc{k3, title = {The {GNU} System {and {more}}}}`
	g := graph.New("g")
	if err := (BibTeX{}).Wrap(g, "x", src); err != nil {
		t.Fatal(err)
	}
	n, _ := g.NodeByName("k3")
	if v, _ := g.First(n, "title"); v != graph.Str("The GNU System and more") {
		t.Errorf("title = %v", v)
	}
}

func TestBibTeXErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing key", `@article{, title = {X}}`},
		{"missing brace", `@article{k, title = {X}`},
		{"bad field", `@article{k, = {X}}`},
		{"unterminated value", `@article{k, title = {X`},
		{"missing eq", `@article{k, title {X}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := graph.New("g")
			if err := (BibTeX{}).Wrap(g, "x", c.src); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCSVWrap(t *testing.T) {
	src := `id,name,phone,office,homepage,dept_ref
mff,Mary Fernandez,973-360-8679,B-123,http://research.att.com/~mff,dbres
suciu,Dan Suciu,,B-124,,dbres
dbres,Database Research,,,,
`
	g := graph.New("g")
	if err := (CSV{}).Wrap(g, "people.csv", src); err != nil {
		t.Fatal(err)
	}
	people := g.Collection("People")
	if len(people) != 3 {
		t.Fatalf("People = %d", len(people))
	}
	mff, ok := g.NodeByName("mff")
	if !ok {
		t.Fatal("mff missing")
	}
	if v, _ := g.First(mff, "name"); v != graph.Str("Mary Fernandez") {
		t.Errorf("name = %v", v)
	}
	if v, _ := g.First(mff, "homepage"); v.Kind() != graph.KindURL {
		t.Errorf("homepage = %v", v)
	}
	// Missing cells become missing attributes.
	suciu, _ := g.NodeByName("suciu")
	if _, ok := g.First(suciu, "phone"); ok {
		t.Error("suciu should have no phone")
	}
	// References resolve by object name.
	dept, _ := g.First(mff, "dept")
	if !dept.IsNode() || g.NodeName(dept.OID()) != "dbres" {
		t.Errorf("dept = %v", dept)
	}
}

func TestCSVTypeInference(t *testing.T) {
	src := "id,n,f,b,s\nx,42,2.5,true,hello\n"
	g := graph.New("g")
	if err := (CSV{}).Wrap(g, "t.csv", src); err != nil {
		t.Fatal(err)
	}
	x, _ := g.NodeByName("x")
	if v, _ := g.First(x, "n"); v != graph.Int(42) {
		t.Errorf("n = %v", v)
	}
	if v, _ := g.First(x, "f"); v != graph.Float(2.5) {
		t.Errorf("f = %v", v)
	}
	if v, _ := g.First(x, "b"); v != graph.Bool(true) {
		t.Errorf("b = %v", v)
	}
	if v, _ := g.First(x, "s"); v != graph.Str("hello") {
		t.Errorf("s = %v", v)
	}
}

func TestCSVErrors(t *testing.T) {
	g := graph.New("g")
	if err := (CSV{}).Wrap(g, "e.csv", ""); err == nil {
		t.Error("empty source should fail")
	}
	if err := (CSV{}).Wrap(g, "e.csv", "id,x\na,1\nb,2,extra,fields\n"); err == nil {
		t.Error("over-long row should fail")
	}
	if err := (CSV{}).Wrap(graph.New("g"), "e.csv", "id,dept_ref\na,nosuch\n"); err == nil {
		t.Error("dangling reference should fail")
	}
}

func TestStructuredWrap(t *testing.T) {
	src := `
# project records
id: strudel
in: Projects, Demos
name: STRUDEL
synopsis: Web-site management
member_ref: mff
member_ref: suciu
started: 1996

id: mff
in: People
name: Mary Fernandez

id: suciu
in: People
name: Dan Suciu
`
	g := graph.New("g")
	if err := (Structured{}).Wrap(g, "projects.txt", src); err != nil {
		t.Fatal(err)
	}
	proj, ok := g.NodeByName("strudel")
	if !ok {
		t.Fatal("strudel missing")
	}
	if !g.InCollection("Projects", graph.NodeValue(proj)) || !g.InCollection("Demos", graph.NodeValue(proj)) {
		t.Error("multi-collection membership broken")
	}
	members := g.OutLabel(proj, "member")
	if len(members) != 2 {
		t.Fatalf("members = %v", members)
	}
	if v, _ := g.First(proj, "started"); v != graph.Int(1996) {
		t.Errorf("started = %v", v)
	}
	if len(g.Collection("People")) != 2 {
		t.Errorf("People = %v", g.Collection("People"))
	}
}

func TestStructuredDefaultCollection(t *testing.T) {
	g := graph.New("g")
	if err := (Structured{}).Wrap(g, "projects.txt", "id: a\nname: A\n"); err != nil {
		t.Fatal(err)
	}
	if len(g.Collection("Projects")) != 1 {
		t.Errorf("default collection missing: %v", g.Collections())
	}
}

func TestStructuredErrors(t *testing.T) {
	g := graph.New("g")
	if err := (Structured{}).Wrap(g, "x", "id: a\nmalformed line\n"); err == nil {
		t.Error("malformed line should fail")
	}
	if err := (Structured{}).Wrap(graph.New("g"), "x", "id: a\nfriend_ref: nosuch\n"); err == nil {
		t.Error("dangling ref should fail")
	}
}

const sampleHTML = `<html>
<head><title>CNN - Top Stories</title><script>ignore("this");</script></head>
<body>
<h1>World News</h1>
<style>.x { color: red }</style>
<p>A story about <a href="story2.html">the election</a> and
<a href="http://example.com/wire">wire reports</a>.</p>
<img src="logo.gif" alt="logo">
<h2>Sports</h2>
</body></html>`

func TestHTMLWrap(t *testing.T) {
	g := graph.New("g")
	if err := (HTML{}).Wrap(g, "index.html", sampleHTML); err != nil {
		t.Fatal(err)
	}
	page, ok := g.NodeByName("index.html")
	if !ok {
		t.Fatal("page node missing")
	}
	if v, _ := g.First(page, "title"); v != graph.Str("CNN - Top Stories") {
		t.Errorf("title = %v", v)
	}
	heads := g.OutLabel(page, "heading")
	if len(heads) != 2 || heads[0] != graph.Str("World News") {
		t.Errorf("headings = %v", heads)
	}
	links := g.OutLabel(page, "link")
	if len(links) != 2 {
		t.Fatalf("links = %v", links)
	}
	// Local link becomes a placeholder node carrying the anchor text;
	// external link is a URL atom.
	var local, external graph.Value
	for _, l := range links {
		if l.IsNode() {
			local = l
		} else {
			external = l
		}
	}
	if g.NodeName(local.OID()) != "story2.html" {
		t.Errorf("local link = %v", local)
	}
	if at, _ := g.First(local.OID(), "anchor-text"); at != graph.Str("the election") {
		t.Errorf("anchor text = %v", at)
	}
	if external.Kind() != graph.KindURL {
		t.Errorf("external link = %v", external)
	}
	imgs := g.OutLabel(page, "image")
	if len(imgs) != 1 || imgs[0].FileType() != graph.FileImage {
		t.Errorf("images = %v", imgs)
	}
	// Script and style contents are excluded from text.
	txt, _ := g.First(page, "text")
	s, _ := txt.AsString()
	if strings.Contains(s, "ignore") || strings.Contains(s, "color") {
		t.Errorf("text includes script/style: %q", s)
	}
	if !strings.Contains(s, "A story about") {
		t.Errorf("text missing body: %q", s)
	}
}

func TestHTMLLinkResolution(t *testing.T) {
	// Wrapping the linked page afterwards reuses the placeholder node.
	g := graph.New("g")
	if err := (HTML{}).Wrap(g, "index.html", `<a href="two.html">two</a>`); err != nil {
		t.Fatal(err)
	}
	if err := (HTML{}).Wrap(g, "two.html", `<title>Two</title>`); err != nil {
		t.Fatal(err)
	}
	two, _ := g.NodeByName("two.html")
	if v, _ := g.First(two, "title"); v != graph.Str("Two") {
		t.Errorf("two.html title = %v", v)
	}
	if len(g.Collection("Pages")) != 2 {
		t.Errorf("Pages = %v", g.Collection("Pages"))
	}
}

func TestByName(t *testing.T) {
	for _, kind := range []string{"bibtex", "csv", "structured", "html", "datadef"} {
		w, ok := ByName(kind)
		if !ok || w.Name() != kind {
			t.Errorf("ByName(%q) = %v, %v", kind, w, ok)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("unknown wrapper should not resolve")
	}
}

func TestDataDefWrapper(t *testing.T) {
	g := graph.New("g")
	w, _ := ByName("datadef")
	if err := w.Wrap(g, "x", `object a in C { v 1 }`); err != nil {
		t.Fatal(err)
	}
	if len(g.Collection("C")) != 1 {
		t.Error("datadef wrapper failed")
	}
}

func TestBibTeXOrderedAuthors(t *testing.T) {
	src := `@article{k, title = {T}, author = {Zed Zulu and Ann Alpha and Mid Mike}}`
	g := graph.New("g")
	if err := (BibTeX{OrderedAuthors: true}).Wrap(g, "x", src); err != nil {
		t.Fatal(err)
	}
	n, _ := g.NodeByName("k")
	authors := g.OutLabel(n, "author")
	if len(authors) != 3 {
		t.Fatalf("authors = %v", authors)
	}
	// Each author is a {name, key} object preserving bibliography
	// order via the integer key (paper Sec. 5.2).
	for i, a := range authors {
		if !a.IsNode() {
			t.Fatalf("author %d is not an object: %v", i, a)
		}
		k, _ := g.First(a.OID(), "key")
		if k != graph.Int(int64(i+1)) {
			t.Errorf("author %d key = %v", i, k)
		}
	}
	name0, _ := g.First(authors[0].OID(), "name")
	if name0 != graph.Str("Zed Zulu") {
		t.Errorf("first author = %v (bibliography order lost)", name0)
	}
}
