package wrapper

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"strudel/internal/graph"
)

// XML wraps XML documents into the graph model. The paper (Sec. 2.2)
// names XML as "another possible data exchange language between the
// wrappers and the mediator layer of Strudel"; this wrapper realizes
// it. The mapping mirrors the natural XML↔OEM correspondence of the
// era:
//
//   - an element with child elements becomes a node; each child
//     element contributes an edge labeled with the child's tag;
//   - an element with only character data becomes an atom (typed by
//     inference: int, float, bool, URL, else string);
//   - attributes become edges labeled with the attribute name;
//   - an "id" attribute names the object, and a "ref" attribute turns
//     the element into a reference to the so-named object;
//   - top-level children of the document element join a collection
//     named after the document element's tag (title-cased).
type XML struct{}

// Name implements Wrapper.
func (XML) Name() string { return "xml" }

// Wrap implements Wrapper.
func (XML) Wrap(g *graph.Graph, sourceName, src string) error {
	dec := xml.NewDecoder(strings.NewReader(src))
	root, err := parseElement(dec)
	if err != nil {
		return fmt.Errorf("xml: %s: %w", sourceName, err)
	}
	if root == nil {
		return fmt.Errorf("xml: %s: no document element", sourceName)
	}
	w := &xmlWalker{g: g}
	coll := titleTag(root.tag)
	g.DeclareCollection(coll)
	for _, child := range root.children {
		v, err := w.value(child)
		if err != nil {
			return fmt.Errorf("xml: %s: %w", sourceName, err)
		}
		g.AddToCollection(coll, v)
	}
	return w.resolveRefs()
}

// xmlElem is one parsed element.
type xmlElem struct {
	tag      string
	attrs    []xml.Attr
	children []*xmlElem
	text     string
}

// parseElement reads the next element (and its subtree) from the
// decoder; nil at EOF before any element.
func parseElement(dec *xml.Decoder) (*xmlElem, error) {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		if start, ok := tok.(xml.StartElement); ok {
			return parseFrom(dec, start)
		}
	}
}

func parseFrom(dec *xml.Decoder, start xml.StartElement) (*xmlElem, error) {
	e := &xmlElem{tag: start.Name.Local, attrs: start.Attr}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := parseFrom(dec, t)
			if err != nil {
				return nil, err
			}
			e.children = append(e.children, child)
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			e.text = strings.TrimSpace(text.String())
			return e, nil
		}
	}
}

type xmlWalker struct {
	g    *graph.Graph
	refs []pendingXMLRef
}

type pendingXMLRef struct {
	from  graph.OID
	label string
	name  string
}

// value converts an element to a graph value.
func (w *xmlWalker) value(e *xmlElem) (graph.Value, error) {
	// Pure reference: <author ref="mff"/>.
	if ref := attrOf(e, "ref"); ref != "" {
		if id, ok := w.g.NodeByName(ref); ok {
			return graph.NodeValue(id), nil
		}
		// Forward reference: create the named node now; a later
		// element with id= will reuse it.
		return graph.NodeValue(w.g.NewNode(ref)), nil
	}
	// Leaf with text only: an atom.
	if len(e.children) == 0 && len(visibleAttrs(e)) == 0 {
		return inferValue(e.text), nil
	}
	// Internal object.
	oid := w.g.NewNode(attrOf(e, "id"))
	for _, a := range visibleAttrs(e) {
		if err := w.g.AddEdge(oid, a.Name.Local, inferValue(a.Value)); err != nil {
			return graph.Value{}, err
		}
	}
	if e.text != "" {
		if err := w.g.AddEdge(oid, "text", graph.Str(e.text)); err != nil {
			return graph.Value{}, err
		}
	}
	for _, child := range e.children {
		cv, err := w.value(child)
		if err != nil {
			return graph.Value{}, err
		}
		if err := w.g.AddEdge(oid, child.tag, cv); err != nil {
			return graph.Value{}, err
		}
	}
	return graph.NodeValue(oid), nil
}

func (w *xmlWalker) resolveRefs() error {
	for _, r := range w.refs {
		id, ok := w.g.NodeByName(r.name)
		if !ok {
			return fmt.Errorf("unresolved reference %q", r.name)
		}
		if err := w.g.AddEdge(r.from, r.label, graph.NodeValue(id)); err != nil {
			return err
		}
	}
	return nil
}

func attrOf(e *xmlElem, name string) string {
	for _, a := range e.attrs {
		if a.Name.Local == name {
			return a.Value
		}
	}
	return ""
}

// visibleAttrs filters out the id/ref bookkeeping attributes.
func visibleAttrs(e *xmlElem) []xml.Attr {
	var out []xml.Attr
	for _, a := range e.attrs {
		if a.Name.Local != "id" && a.Name.Local != "ref" && a.Name.Space == "" {
			out = append(out, a)
		}
	}
	return out
}

func titleTag(tag string) string {
	if tag == "" {
		return "Items"
	}
	return strings.ToUpper(tag[:1]) + tag[1:]
}

// WriteXML serializes a graph in the exchange dialect Wrap reads: one
// document element containing each named object, attributes as child
// elements, node references via ref. It round-trips modulo anonymous
// node names.
func WriteXML(w io.Writer, g *graph.Graph, rootTag string) error {
	fmt.Fprintf(w, "<%s>\n", rootTag)
	for _, id := range g.Nodes() {
		name := g.NodeName(id)
		if name == "" {
			name = "o" + strconv.FormatUint(uint64(id), 10)
		}
		fmt.Fprintf(w, "  <object id=%q>\n", name)
		for _, e := range g.Out(id) {
			if e.To.IsNode() {
				tn := g.NodeName(e.To.OID())
				if tn == "" {
					tn = "o" + strconv.FormatUint(uint64(e.To.OID()), 10)
				}
				fmt.Fprintf(w, "    <%s ref=%q/>\n", e.Label, tn)
			} else {
				var sb strings.Builder
				xml.EscapeText(&sb, []byte(e.To.Text()))
				fmt.Fprintf(w, "    <%s>%s</%s>\n", e.Label, sb.String(), e.Label)
			}
		}
		fmt.Fprintln(w, "  </object>")
	}
	_, err := fmt.Fprintf(w, "</%s>\n", rootTag)
	return err
}
