package wrapper

import (
	"strings"
	"testing"

	"strudel/internal/graph"
)

const sampleXML = `<?xml version="1.0"?>
<bibliography>
  <publication id="pub1" kind="article">
    <title>Specifying Representations</title>
    <author>Norman Ramsey</author>
    <author>Mary Fernandez</author>
    <year>1997</year>
    <rating>4.5</rating>
    <published>true</published>
    <home>http://example.com/pub1</home>
    <cites ref="pub2"/>
  </publication>
  <publication id="pub2">
    <title>Optimizing Regular Path Expressions</title>
    <venue>
      <name>ICDE</name>
      <location>Orlando</location>
    </venue>
  </publication>
</bibliography>`

func TestXMLWrap(t *testing.T) {
	g := graph.New("g")
	if err := (XML{}).Wrap(g, "bib.xml", sampleXML); err != nil {
		t.Fatal(err)
	}
	if len(g.Collection("Bibliography")) != 2 {
		t.Fatalf("collection = %v", g.Collection("Bibliography"))
	}
	p1, ok := g.NodeByName("pub1")
	if !ok {
		t.Fatal("pub1 missing")
	}
	if v, _ := g.First(p1, "title"); v != graph.Str("Specifying Representations") {
		t.Errorf("title = %v", v)
	}
	if authors := g.OutLabel(p1, "author"); len(authors) != 2 {
		t.Errorf("authors = %v", authors)
	}
	// Attributes become edges.
	if v, _ := g.First(p1, "kind"); v != graph.Str("article") {
		t.Errorf("kind = %v", v)
	}
	// Type inference on leaf text.
	if v, _ := g.First(p1, "year"); v != graph.Int(1997) {
		t.Errorf("year = %v", v)
	}
	if v, _ := g.First(p1, "rating"); v != graph.Float(4.5) {
		t.Errorf("rating = %v", v)
	}
	if v, _ := g.First(p1, "published"); v != graph.Bool(true) {
		t.Errorf("published = %v", v)
	}
	if v, _ := g.First(p1, "home"); v.Kind() != graph.KindURL {
		t.Errorf("home = %v", v)
	}
	// Forward reference resolves to the same node.
	p2, _ := g.NodeByName("pub2")
	if v, _ := g.First(p1, "cites"); v != graph.NodeValue(p2) {
		t.Errorf("cites = %v", v)
	}
	// Nested element becomes an anonymous object.
	venue, ok := g.First(p2, "venue")
	if !ok || !venue.IsNode() {
		t.Fatalf("venue = %v", venue)
	}
	if v, _ := g.First(venue.OID(), "location"); v != graph.Str("Orlando") {
		t.Errorf("location = %v", v)
	}
}

func TestXMLWrapErrors(t *testing.T) {
	g := graph.New("g")
	if err := (XML{}).Wrap(g, "bad.xml", "<a><b></a>"); err == nil {
		t.Error("mismatched tags should fail")
	}
	if err := (XML{}).Wrap(g, "empty.xml", "  "); err == nil {
		t.Error("empty document should fail")
	}
}

func TestXMLRegisteredByName(t *testing.T) {
	w, ok := ByName("xml")
	if !ok || w.Name() != "xml" {
		t.Fatal("xml wrapper not registered")
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	g := graph.New("g")
	a := g.NewNode("a")
	b := g.NewNode("b")
	g.AddEdge(a, "title", graph.Str("Hello <World> & Co"))
	g.AddEdge(a, "year", graph.Int(1997))
	g.AddEdge(a, "next", graph.NodeValue(b))
	g.AddEdge(b, "title", graph.Str("Other"))
	var sb strings.Builder
	if err := WriteXML(&sb, g, "db"); err != nil {
		t.Fatal(err)
	}
	g2 := graph.New("g2")
	if err := (XML{}).Wrap(g2, "rt.xml", sb.String()); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	a2, ok := g2.NodeByName("a")
	if !ok {
		t.Fatal("a lost")
	}
	if v, _ := g2.First(a2, "title"); v != graph.Str("Hello <World> & Co") {
		t.Errorf("title = %v", v)
	}
	if v, _ := g2.First(a2, "year"); v != graph.Int(1997) {
		t.Errorf("year = %v", v)
	}
	b2, _ := g2.NodeByName("b")
	if v, _ := g2.First(a2, "next"); v != graph.NodeValue(b2) {
		t.Errorf("next = %v", v)
	}
}
