package strudel_test

// Integration tests for the observability layer: EXPLAIN profiles must
// be identical at any worker count on every example site, and page
// provenance must agree with the incremental rebuilder — every page a
// delta rebuild re-renders traces back to a changed object, and no
// reused page does.

import (
	"math/rand"
	"reflect"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/workload"
)

// introspectionSites are the graph-backed example sites, sharing the
// builders and edit scripts of the differential suite.
func introspectionSites() []struct {
	name      string
	mkBuilder func(t *testing.T) *core.Builder
	fresh     func() *graph.Graph
	mutate    func(*testing.T, *graph.Graph, *rand.Rand)
	seed0     int64
} {
	return []struct {
		name      string
		mkBuilder func(t *testing.T) *core.Builder
		fresh     func() *graph.Graph
		mutate    func(*testing.T, *graph.Graph, *rand.Rand)
		seed0     int64
	}{
		{"bibliography", specBuilder(workload.BibliographySpec()),
			func() *graph.Graph { return workload.Bibliography(18, 42) }, mutateBib, 100},
		{"cnn", specBuilder(workload.ArticleSpec(false)),
			func() *graph.Graph { return workload.Articles(20, 11) }, mutateArticles, 200},
		{"homepage", homepageDiffBuilder, homepageDiffData, mutateHomepage, 300},
		{"textonly", textonlyDiffBuilder, textonlyDiffData, mutateTextonly, 400},
	}
}

// TestExplainWorkerInvarianceAcrossSites: on every example site, the
// profiled plan is identical (minus wall time) at worker counts 1, 4,
// and 16, and its per-operator row counts sum to the query's bindings.
func TestExplainWorkerInvarianceAcrossSites(t *testing.T) {
	for _, site := range introspectionSites() {
		site := site
		t.Run(site.name, func(t *testing.T) {
			var base *core.Explain
			for _, workers := range []int{1, 4, 16} {
				b := site.mkBuilder(t)
				b.SetWorkers(workers)
				b.SetDataGraph(site.fresh())
				ex, err := b.Explain()
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range ex.Queries {
					if q.Plan == nil {
						t.Fatalf("workers=%d query[%d]: no plan", workers, q.Index)
					}
					if got := q.Plan.TotalRows(); got != q.Bindings {
						t.Errorf("workers=%d query[%d]: plan rows = %d, bindings = %d",
							workers, q.Index, got, q.Bindings)
					}
					q.Plan.StripWall()
				}
				ex.Workers = 0
				if base == nil {
					base = ex
					continue
				}
				if !reflect.DeepEqual(base, ex) {
					t.Errorf("explain at workers=%d differs from workers=1", workers)
				}
			}
		})
	}
}

// TestExplainOptimizerAcrossSites: under the cost-based planner the
// same row-accounting invariant holds on every site.
func TestExplainOptimizerAcrossSites(t *testing.T) {
	for _, site := range introspectionSites() {
		site := site
		t.Run(site.name, func(t *testing.T) {
			b := site.mkBuilder(t)
			b.EnableOptimizer()
			b.SetDataGraph(site.fresh())
			ex, err := b.Explain()
			if err != nil {
				t.Fatal(err)
			}
			if !ex.Optimizer {
				t.Error("explain does not report the optimizer")
			}
			for _, q := range ex.Queries {
				if got := q.Plan.TotalRows(); got != q.Bindings {
					t.Errorf("query[%d]: plan rows = %d, bindings = %d", q.Index, got, q.Bindings)
				}
			}
		})
	}
}

// runProvenanceDifferential replays the differential edit script with
// introspection on and checks both provenance directions on every
// selective round:
//
//   - every re-rendered page's derivation (its Sources, old and new
//     union — a page re-rendered because an object was *removed* only
//     names it in the old record) includes at least one changed data
//     object, and
//   - no reused page's render closure (its Objects) contains a site
//     object the site-graph diff reports added or changed.
//
// The two directions deliberately use different granularities.
// Sources record full binding rows, which over-approximate rendering
// dependence (a witness variable can change without the page's bytes
// changing), so the reuse check compares at the site-object level,
// where provenance (forward reachability) and the rebuilder (reverse
// reachability from the changed objects) must agree exactly.
func runProvenanceDifferential(t *testing.T, mkBuilder func(t *testing.T) *core.Builder,
	fresh func() *graph.Graph, mutate func(*testing.T, *graph.Graph, *rand.Rand),
	seed0 int64) (rendered, reused int) {
	t.Helper()
	cur := fresh()
	b := mkBuilder(t)
	b.EnableIntrospection()
	b.SetDataGraph(cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	old := fresh()
	for round := 0; round < diffRounds; round++ {
		seed := seed0 + int64(round)
		mutate(t, cur, rand.New(rand.NewSource(seed)))
		delta := graph.Diff(old, cur)
		res, err := b.RebuildWithDelta(prev, delta)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		mutate(t, old, rand.New(rand.NewSource(seed)))
		if res.Incremental == nil || res.Incremental.Mode != "selective" {
			prev = res
			continue
		}
		changed := map[string]bool{}
		for _, name := range delta.Objects() {
			changed[name] = true
		}
		siteDelta := graph.Diff(prev.SiteGraph, res.SiteGraph)
		changedSite := map[string]bool{}
		for _, name := range append(append([]string{}, siteDelta.AddedObjects...), siteDelta.ChangedObjects...) {
			changedSite[name] = true
		}
		renderedPaths := map[string]bool{}
		for _, p := range res.Incremental.Site.RenderedPaths {
			renderedPaths[p] = true
		}
		for path := range res.Site.Pages {
			pp, ok := res.PageProvenance(path)
			if !ok {
				t.Errorf("round %d: no provenance for page %s", round, path)
				continue
			}
			if renderedPaths[path] {
				rendered++
				// Union of the page's sources before and after the edit.
				touches := false
				for _, r := range []*core.Result{res, prev} {
					if rp, ok := r.PageProvenance(path); ok {
						for _, s := range rp.Sources {
							if changed[s.Name] {
								touches = true
							}
						}
					}
				}
				if !touches {
					t.Errorf("round %d: page %s was re-rendered but its provenance names no changed object %v",
						round, path, delta.Objects())
				}
			} else {
				reused++
				for _, name := range pp.Objects {
					if changedSite[name] {
						t.Errorf("round %d: page %s was reused but its render closure contains changed site object %s",
							round, path, name)
					}
				}
			}
		}
		prev = res
	}
	return rendered, reused
}

// TestProvenanceTracksDeltaRebuilds is the provenance half of the
// differential suite: across random edit scripts on every example
// site, provenance and the incremental rebuilder must agree on which
// pages a change can reach.
func TestProvenanceTracksDeltaRebuilds(t *testing.T) {
	totalRendered, totalReused := 0, 0
	for _, site := range introspectionSites() {
		site := site
		t.Run(site.name, func(t *testing.T) {
			rendered, reused := runProvenanceDifferential(t, site.mkBuilder, site.fresh, site.mutate, site.seed0)
			t.Logf("%s: checked %d rendered, %d reused pages", site.name, rendered, reused)
			totalRendered += rendered
			totalReused += reused
		})
	}
	if totalRendered == 0 {
		t.Error("no selective round re-rendered any page — the provenance check never ran")
	}
	if totalReused == 0 {
		t.Error("no selective round reused any page — the reuse check never ran")
	}
}
