package strudel_test

// Load-generation conformance: the full serving stack (observability
// middleware → edge with hot/cold materialization → built site) under
// a deterministic Zipf workload with mixed conditional traffic. The
// paper's serving argument (Sec. 6) is that a materialized site keeps
// click latency flat at scale; here the edge must answer at least 90%
// of requests from provenance-keyed revalidation (304) or resident hot
// bytes, hold an in-process p99 floor, and survive injected faults
// without corrupting a single body. BENCH_serve.json snapshots the
// measured numbers.

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"strudel/internal/server"
	"strudel/internal/telemetry"
	"strudel/internal/workload"
)

// loadStack builds the bibliography site and the full serving stack
// over it: accounting-fed observability wrapping a compressing,
// hot/cold-materializing edge.
func loadStack(t *testing.T) (*server.Edge, *server.Accounting, []string, map[string]string) {
	t.Helper()
	res, err := etagBibBuilder(t, 4, workload.Bibliography(40, 42)).Build()
	if err != nil {
		t.Fatal(err)
	}
	acct := server.NewAccounting(1024)
	edge := server.NewEdge(server.NewSiteSource(res.Site), server.EdgeConfig{
		Mode:       "static",
		HotPages:   12,
		Compress:   true,
		Accounting: acct,
		Registry:   telemetry.NewRegistry(),
	})
	paths := make([]string, 0, len(res.Site.Pages))
	bodies := make(map[string]string, len(res.Site.Pages))
	for p, pg := range res.Site.Pages {
		paths = append(paths, p)
		bodies["/"+p] = pg.HTML
	}
	sort.Strings(paths)
	return edge, acct, paths, bodies
}

// TestLoadConformance drives the stack with closed-loop Zipf clients
// and asserts the serving floors: ≥90% of measured requests answered
// by a 304 or resident hot bytes, zero body corruption, and generous
// in-process latency/throughput floors (loose enough for a loaded CI
// host, tight enough to catch an accidentally quadratic edge).
func TestLoadConformance(t *testing.T) {
	edge, acct, paths, bodies := loadStack(t)
	h := server.InstrumentObserved(server.Observability{Accounting: acct}, "static", edge)

	validate := func(path string, status int, etag string, body []byte) error {
		switch status {
		case 200:
			if want := bodies[path]; string(body) != want {
				return fmt.Errorf("%s: served %d bytes, want %d", path, len(body), len(want))
			}
			if etag == "" {
				return fmt.Errorf("%s: 200 without ETag", path)
			}
		case 304:
			if len(body) != 0 {
				return fmt.Errorf("%s: 304 carried %d bytes", path, len(body))
			}
		default:
			return fmt.Errorf("%s: status %d", path, status)
		}
		return nil
	}

	// Warmup: populate the accounting table, then rank and materialize
	// the hot set — the steady state a long-running server converges to
	// via RunPolicy.
	warm, err := workload.RunLoad(h, paths, workload.LoadOptions{
		Clients: 2, Requests: 200, Seed: 17, ZipfS: 1.3, Gzip: true, Validate: validate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Errors > 0 {
		t.Fatalf("warmup errors: %d (%s)", warm.Errors, warm.FirstError)
	}
	edge.Rerank()
	if hot := edge.HotKeys(); len(hot) == 0 {
		t.Fatal("no pages materialized after warmup")
	}

	// Measured pass. Edge stats are cumulative, so diff around it.
	before := edge.Stats()
	rep, err := workload.RunLoad(h, paths, workload.LoadOptions{
		Clients: 4, Requests: 800, Seed: 99, ZipfS: 1.3, Gzip: true, Validate: validate,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := edge.Stats()

	if rep.Errors > 0 {
		t.Errorf("%d request errors (first: %s)", rep.Errors, rep.FirstError)
	}
	reqs := after.Requests - before.Requests
	hits := (after.Hits304 - before.Hits304) + (after.HitsHot - before.HitsHot)
	if reqs == 0 {
		t.Fatal("edge saw no traffic")
	}
	ratio := float64(hits) / float64(reqs)
	if ratio < 0.90 {
		t.Errorf("edge hit ratio = %.3f (304=%d hot=%d of %d), want >= 0.90",
			ratio, after.Hits304-before.Hits304, after.HitsHot-before.HitsHot, reqs)
	}
	// Floors: in-process serves complete in microseconds; these bounds
	// only catch pathological regressions, not environmental noise.
	if rep.P99 > 250*time.Millisecond {
		t.Errorf("p99 = %v, want <= 250ms", rep.P99)
	}
	if rep.RPS < 200 {
		t.Errorf("RPS = %.0f, want >= 200", rep.RPS)
	}
	t.Logf("load: %d reqs, ratio=%.3f (304=%d hot=%d cold=%d), p50=%v p99=%v rps=%.0f",
		reqs, ratio, after.Hits304-before.Hits304, after.HitsHot-before.HitsHot,
		after.Cold-before.Cold, rep.P50, rep.P99, rep.RPS)
}

// TestLoadConformanceWithFaults: injected transport faults surface as
// counted client errors; every response that does come back is still
// byte-correct, and the edge's own error counters stay clean (the
// faults are client-side, the edge never sees them).
func TestLoadConformanceWithFaults(t *testing.T) {
	edge, acct, paths, bodies := loadStack(t)
	h := server.InstrumentObserved(server.Observability{Accounting: acct}, "static", edge)
	inj := workload.NewFaultInjector(workload.FaultConfig{ErrorRate: 0.1, Seed: 5})
	rep, err := workload.RunLoad(h, paths, workload.LoadOptions{
		Clients: 2, Requests: 200, Seed: 3, Faults: inj,
		Validate: func(path string, status int, etag string, body []byte) error {
			if status == 200 && string(body) != bodies[path] {
				return fmt.Errorf("%s: corrupt body", path)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	if st.Errors == 0 {
		t.Fatal("fault injector idle — test proves nothing")
	}
	if rep.Errors != st.Errors {
		t.Errorf("report errors %d != injected %d (validation failure leaked through)",
			rep.Errors, st.Errors)
	}
	if es := edge.Stats(); es.Errors != 0 {
		t.Errorf("edge recorded %d internal errors under client-side faults", es.Errors)
	}
}
