package strudel_test

// Property-based maintenance suite: differential rebuilds are tested
// against randomly generated, *replayable* edit scripts. A script is a
// list of discrete ops (each carrying its own seed), so any subset of
// a failing script is itself a valid script — which is what makes
// shrinking possible: on failure the suite greedily removes ops while
// the failure reproduces and reports the minimal failing script.
//
// The property, for every site and every script: chain one incremental
// rebuild per op, then require the final pages, the site-graph dump,
// and the maintained binding relations to be identical to a
// from-scratch build over identically edited data — at worker counts
// 1, 4 and 16.

import (
	"fmt"
	"math/rand"
	"testing"

	"strudel/internal/core"
	"strudel/internal/graph"
	"strudel/internal/workload"
)

// editOp is one deterministic edit: kind selects the mutation, seed
// feeds the op-local rng that picks targets and fresh values. Applying
// the same op to structurally identical graphs performs the identical
// edit.
type editOp struct {
	Kind int
	Seed int64
}

type editScript []editOp

func randomScript(rng *rand.Rand, n, kinds int) editScript {
	s := make(editScript, n)
	for i := range s {
		s[i] = editOp{Kind: rng.Intn(kinds), Seed: rng.Int63()}
	}
	return s
}

func without(s editScript, i, n int) editScript {
	out := make(editScript, 0, len(s)-n)
	out = append(out, s[:i]...)
	return append(out, s[min(i+n, len(s)):]...)
}

// shrinkScript minimizes a failing script: first drops chunks, then
// single ops, until no single removal still fails.
func shrinkScript(fails func(editScript) bool, s editScript) editScript {
	for _, chunk := range []int{8, 4, 2, 1} {
		for i := 0; i+chunk <= len(s); {
			if cand := without(s, i, chunk); fails(cand) {
				s = cand
			} else {
				i++
			}
		}
	}
	return s
}

// applyBibOp performs one edit on a bibliography-shaped graph. Errors
// are ignored uniformly: both the live graph and the scratch replay
// see the same state, so they fail (or not) identically.
func applyBibOp(g *graph.Graph, op editOp) {
	rng := rand.New(rand.NewSource(op.Seed))
	pubs := g.Collection("Publications")
	if len(pubs) == 0 {
		return
	}
	oid := pubs[rng.Intn(len(pubs))].OID()
	switch op.Kind % 5 {
	case 0: // retitle
		if old, ok := g.First(oid, "title"); ok {
			g.RemoveEdge(oid, "title", old)
		}
		g.AddEdge(oid, "title", graph.Str(fmt.Sprintf("Edited title %d", rng.Intn(1000))))
	case 1: // extra category
		g.AddEdge(oid, "category", graph.Str(fmt.Sprintf("Topic %d", rng.Intn(5))))
	case 2: // drop a random attribute edge
		out := g.Out(oid)
		if len(out) > 1 {
			e := out[rng.Intn(len(out))]
			g.RemoveEdge(oid, e.Label, e.To)
		}
	case 3: // brand-new publication
		name := fmt.Sprintf("pub_prop%d", rng.Int63())
		id := g.NewNode(name)
		g.AddToCollection("Publications", graph.NodeValue(id))
		g.AddEdge(id, "title", graph.Str(fmt.Sprintf("New work %d", rng.Intn(1000))))
		g.AddEdge(id, "author", graph.Str("Ann Author"))
		g.AddEdge(id, "year", graph.Int(int64(1990+rng.Intn(8))))
		g.AddEdge(id, "category", graph.Str(fmt.Sprintf("Topic %d", rng.Intn(5))))
	case 4: // remove a publication outright
		if len(pubs) > 3 {
			g.RemoveNode(oid)
		}
	}
}

// applyArticleOp performs one edit on a CNN-shaped corpus.
func applyArticleOp(g *graph.Graph, op editOp) {
	rng := rand.New(rand.NewSource(op.Seed))
	arts := g.Collection("Articles")
	if len(arts) == 0 {
		return
	}
	v := arts[rng.Intn(len(arts))]
	oid := v.OID()
	switch op.Kind % 5 {
	case 0: // retitle
		if old, ok := g.First(oid, "title"); ok {
			g.RemoveEdge(oid, "title", old)
		}
		g.AddEdge(oid, "title", graph.Str(fmt.Sprintf("Breaking %d", rng.Intn(1000))))
	case 1: // extra section
		g.AddEdge(oid, "section", graph.Str(workload.Sections[rng.Intn(len(workload.Sections))]))
	case 2: // related-link churn
		other := arts[rng.Intn(len(arts))]
		if other != v {
			g.AddEdge(oid, "related", other)
		}
	case 3: // new article
		name := fmt.Sprintf("art_prop%d", rng.Int63())
		id := g.NewNode(name)
		g.AddToCollection("Articles", graph.NodeValue(id))
		g.AddEdge(id, "title", graph.Str(fmt.Sprintf("Story %d", rng.Intn(1000))))
		g.AddEdge(id, "byline", graph.Str("Ann Author"))
		g.AddEdge(id, "date", graph.Str("1997-06-15"))
		g.AddEdge(id, "section", graph.Str(workload.Sections[rng.Intn(len(workload.Sections))]))
		g.AddEdge(id, "body", graph.Str(fmt.Sprintf("Body text %d.", rng.Intn(1000))))
	case 4: // remove an article
		if len(arts) > 3 {
			g.RemoveNode(oid)
		}
	}
}

func applyHomepageOp(g *graph.Graph, op editOp) {
	if op.Kind%6 == 5 {
		rng := rand.New(rand.NewSource(op.Seed))
		if mff, ok := g.NodeByName("mff"); ok {
			g.AddEdge(mff, "activity", graph.Str(fmt.Sprintf("Talk %d", rng.Intn(1000))))
		}
		return
	}
	applyBibOp(g, op)
}

func applyTextonlyOp(g *graph.Graph, op editOp) {
	applyArticleOp(g, op)
	// Keep every article (new ones included) reachable from the root.
	if front, ok := g.NodeByName("front"); ok {
		for _, a := range g.Collection("Articles") {
			g.AddEdge(front, "story", a)
		}
	}
}

// compareResultsErr is the error-returning twin of comparePages, with
// the binding-relation check on top; the shrinker needs the comparison
// as a predicate rather than a test failure.
func compareResultsErr(got, want *core.Result, gotBind, wantBind map[int][]string) error {
	if len(got.Site.Pages) != len(want.Site.Pages) {
		return fmt.Errorf("page count %d, scratch %d", len(got.Site.Pages), len(want.Site.Pages))
	}
	for path, wp := range want.Site.Pages {
		gp := got.Site.Pages[path]
		if gp == nil {
			return fmt.Errorf("page %s missing", path)
		}
		if gp.HTML != wp.HTML {
			return fmt.Errorf("page %s differs from scratch", path)
		}
	}
	if g, w := got.SiteGraph.DumpString(), want.SiteGraph.DumpString(); g != w {
		return fmt.Errorf("site-graph dump differs from scratch")
	}
	if wantBind != nil {
		if gotBind == nil {
			return fmt.Errorf("maintained binding relations missing")
		}
		if fmt.Sprint(gotBind) != fmt.Sprint(wantBind) {
			return fmt.Errorf("binding relations differ from scratch")
		}
	}
	return nil
}

// runScript chains one incremental rebuild per op and compares the end
// state against a from-scratch build over identically edited data.
// Returns nil when the property holds.
func runScript(t *testing.T, mk func(t *testing.T) *core.Builder,
	fresh func() *graph.Graph, apply func(*graph.Graph, editOp),
	script editScript, workers int) error {
	t.Helper()
	cur := fresh()
	b := mk(t)
	b.SetWorkers(workers)
	b.SetDataGraph(cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err) // configuration error, not a property failure
	}
	old := fresh()
	for i, op := range script {
		apply(cur, op)
		delta := graph.Diff(old, cur)
		res, err := b.RebuildWithDelta(prev, delta)
		if err != nil {
			return fmt.Errorf("op %d: rebuild: %v", i, err)
		}
		apply(old, op)
		prev = res
	}
	sdata := fresh()
	for _, op := range script {
		apply(sdata, op)
	}
	sb := mk(t)
	sb.SetWorkers(workers)
	sb.SetDataGraph(sdata)
	want, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return compareResultsErr(prev, want, b.BindingDump(), sb.BindingDump())
}

// propSite is one site under property test.
type propSite struct {
	name  string
	mk    func(t *testing.T) *core.Builder
	fresh func() *graph.Graph
	apply func(*graph.Graph, editOp)
	kinds int
}

func propSites() []propSite {
	return []propSite{
		{"bibliography", specBuilder(workload.BibliographySpec()),
			func() *graph.Graph { return workload.Bibliography(18, 42) }, applyBibOp, 5},
		{"cnn", specBuilder(workload.ArticleSpec(false)),
			func() *graph.Graph { return workload.Articles(20, 11) }, applyArticleOp, 5},
		{"cnn-sports", specBuilder(workload.ArticleSpec(true)),
			func() *graph.Graph { return workload.Articles(20, 11) }, applyArticleOp, 5},
		{"homepage", homepageDiffBuilder, homepageDiffData, applyHomepageOp, 6},
		{"textonly", textonlyDiffBuilder, textonlyDiffData, applyTextonlyOp, 5},
	}
}

// TestPropertyDifferentialMaintenance: random edit scripts over the
// example sites, at workers 1/4/16. On failure, the script shrinks to
// a minimal failing subset before reporting.
func TestPropertyDifferentialMaintenance(t *testing.T) {
	trials, length := 2, 8
	if testing.Short() {
		trials, length = 1, 5
	}
	for _, site := range propSites() {
		site := site
		t.Run(site.name, func(t *testing.T) {
			for _, workers := range []int{1, 4, 16} {
				workers := workers
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					for trial := 0; trial < trials; trial++ {
						rng := rand.New(rand.NewSource(int64(7000 + 100*trial + workers)))
						script := randomScript(rng, length, site.kinds)
						err := runScript(t, site.mk, site.fresh, site.apply, script, workers)
						if err == nil {
							continue
						}
						fails := func(s editScript) bool {
							return runScript(t, site.mk, site.fresh, site.apply, s, workers) != nil
						}
						minScript := shrinkScript(fails, script)
						minErr := runScript(t, site.mk, site.fresh, site.apply, minScript, workers)
						t.Fatalf("property failed: %v\nminimal failing script (%d of %d ops): %+v\nminimal failure: %v",
							err, len(minScript), len(script), minScript, minErr)
					}
				})
			}
		})
	}
}

// TestPropertyDifferential10k runs one edit script against a
// 10,000-publication site (1,000 in -short mode): the differential
// path must stay byte-identical to scratch at scale, not just on the
// toy corpora.
func TestPropertyDifferential10k(t *testing.T) {
	size := 10000
	if testing.Short() {
		size = 1000
	}
	fresh := func() *graph.Graph { return workload.Bibliography(size, 7) }
	mk := specBuilder(workload.BibliographySpec())
	script := randomScript(rand.New(rand.NewSource(9001)), 5, 5)
	if err := runScript(t, mk, fresh, applyBibOp, script, 4); err != nil {
		fails := func(s editScript) bool {
			return runScript(t, mk, fresh, applyBibOp, s, 4) != nil
		}
		minScript := shrinkScript(fails, script)
		t.Fatalf("property failed at %d objects: %v\nminimal failing script: %+v", size, err, minScript)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
