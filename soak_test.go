package strudel_test

// Soak test for differential maintenance: one warehouse, hundreds of
// sequential random edits, one incremental rebuild per edit, never a
// fresh builder. Periodic checkpoints rebuild the identically edited
// data from scratch and require byte-identical pages, site-graph dump,
// and binding relations — so state that drifts slowly (support counts,
// sequence numbers, order repair) is caught within one checkpoint
// window of where it went wrong. `make soak` runs the full 500 edits
// under the race detector; -short keeps a CI-sized slice of it.

import (
	"math/rand"
	"testing"
	"time"

	"strudel/internal/graph"
	"strudel/internal/ledger"
	"strudel/internal/workload"
)

func TestSoakDifferential(t *testing.T) {
	edits, checkpointEvery := 500, 50
	if testing.Short() {
		edits, checkpointEvery = 60, 20
	}
	fresh := func() *graph.Graph { return workload.Bibliography(60, 13) }
	mk := specBuilder(workload.BibliographySpec())

	cur := fresh()
	b := mk(t)
	b.SetWorkers(4)
	b.SetDataGraph(cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Every edit's cycle is recorded in a persistent build ledger, the
	// way a long-running server would: the freshness stamp must exist
	// and stay sane for every single edit, and the segments must
	// survive a reopen at the end of the soak.
	ledgerDir := t.TempDir()
	led, err := ledger.Open(ledger.Options{
		Dir: ledgerDir, SegmentEntries: 128, KeepSegments: 8, MemoryEntries: edits + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	old := fresh()
	rng := rand.New(rand.NewSource(77))
	var script editScript
	differentialRounds, stamped := 0, 0
	for i := 1; i <= edits; i++ {
		op := editOp{Kind: rng.Intn(5), Seed: rng.Int63()}
		script = append(script, op)
		applyBibOp(cur, op)
		observed := time.Now()
		delta := graph.Diff(old, cur)
		res, err := b.RebuildWithDelta(prev, delta)
		if err != nil {
			t.Fatalf("edit %d: rebuild: %v", i, err)
		}
		applyBibOp(old, op)
		if res.Incremental != nil && res.Incremental.Mode == "differential" {
			differentialRounds++
		}
		e := ledger.FromResult(res, "interval")
		if e.Mode != "noop" {
			e.StampFreshness(observed, time.Now())
		}
		rec, err := led.Append(e)
		if err != nil {
			t.Fatalf("edit %d: ledger append: %v", i, err)
		}
		if rec.Mode != "noop" {
			if rec.Freshness == nil {
				t.Fatalf("edit %d: changed cycle has no freshness stamp", i)
			}
			if p := rec.Freshness.PropagationSeconds; p < 0 || p > 30 {
				t.Fatalf("edit %d: propagation %v outside [0, 30s]", i, p)
			}
			stamped++
		}
		prev = res

		if i%checkpointEvery != 0 && i != edits {
			continue
		}
		sdata := fresh()
		for _, sop := range script {
			applyBibOp(sdata, sop)
		}
		sb := mk(t)
		sb.SetWorkers(4)
		sb.SetDataGraph(sdata)
		want, err := sb.Build()
		if err != nil {
			t.Fatalf("checkpoint at edit %d: scratch build: %v", i, err)
		}
		if err := compareResultsErr(prev, want, b.BindingDump(), sb.BindingDump()); err != nil {
			t.Fatalf("checkpoint at edit %d: %v", i, err)
		}
	}
	// The soak is only meaningful if the fast path actually carried the
	// load; a silent degradation to full rebuilds must fail loudly.
	if differentialRounds < edits/2 {
		t.Errorf("only %d of %d edits took the differential path", differentialRounds, edits)
	}
	// Freshness must have been tracked for the soak to mean anything:
	// nearly every random edit changes the site.
	if stamped < edits/2 {
		t.Errorf("only %d of %d edits recorded a freshness stamp", stamped, edits)
	}
	if led.Len() != edits {
		t.Errorf("ledger holds %d entries, want %d", led.Len(), edits)
	}
	// Reopen from disk: recovery must see every persisted cycle intact,
	// newest first, ending at the soak's last sequence number.
	re, err := ledger.Open(ledger.Options{
		Dir: ledgerDir, SegmentEntries: 128, KeepSegments: 8, MemoryEntries: edits + 1,
	})
	if err != nil {
		t.Fatalf("reopening soak ledger: %v", err)
	}
	if re.Dropped() != 0 {
		t.Errorf("recovery dropped %d damaged lines", re.Dropped())
	}
	recovered := re.Entries(ledger.Filter{})
	if len(recovered) == 0 || recovered[0].Seq != uint64(edits) {
		t.Errorf("recovered %d entries, head seq %d, want head %d",
			len(recovered), recovered[0].Seq, edits)
	}
	t.Logf("soak: %d edits, %d differential, %d stamped, %d recovered, %d checkpoints",
		edits, differentialRounds, stamped, len(recovered), edits/checkpointEvery)
}
