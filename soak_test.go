package strudel_test

// Soak test for differential maintenance: one warehouse, hundreds of
// sequential random edits, one incremental rebuild per edit, never a
// fresh builder. Periodic checkpoints rebuild the identically edited
// data from scratch and require byte-identical pages, site-graph dump,
// and binding relations — so state that drifts slowly (support counts,
// sequence numbers, order repair) is caught within one checkpoint
// window of where it went wrong. `make soak` runs the full 500 edits
// under the race detector; -short keeps a CI-sized slice of it.

import (
	"math/rand"
	"testing"

	"strudel/internal/graph"
	"strudel/internal/workload"
)

func TestSoakDifferential(t *testing.T) {
	edits, checkpointEvery := 500, 50
	if testing.Short() {
		edits, checkpointEvery = 60, 20
	}
	fresh := func() *graph.Graph { return workload.Bibliography(60, 13) }
	mk := specBuilder(workload.BibliographySpec())

	cur := fresh()
	b := mk(t)
	b.SetWorkers(4)
	b.SetDataGraph(cur)
	prev, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	old := fresh()
	rng := rand.New(rand.NewSource(77))
	var script editScript
	differentialRounds := 0
	for i := 1; i <= edits; i++ {
		op := editOp{Kind: rng.Intn(5), Seed: rng.Int63()}
		script = append(script, op)
		applyBibOp(cur, op)
		delta := graph.Diff(old, cur)
		res, err := b.RebuildWithDelta(prev, delta)
		if err != nil {
			t.Fatalf("edit %d: rebuild: %v", i, err)
		}
		applyBibOp(old, op)
		if res.Incremental != nil && res.Incremental.Mode == "differential" {
			differentialRounds++
		}
		prev = res

		if i%checkpointEvery != 0 && i != edits {
			continue
		}
		sdata := fresh()
		for _, sop := range script {
			applyBibOp(sdata, sop)
		}
		sb := mk(t)
		sb.SetWorkers(4)
		sb.SetDataGraph(sdata)
		want, err := sb.Build()
		if err != nil {
			t.Fatalf("checkpoint at edit %d: scratch build: %v", i, err)
		}
		if err := compareResultsErr(prev, want, b.BindingDump(), sb.BindingDump()); err != nil {
			t.Fatalf("checkpoint at edit %d: %v", i, err)
		}
	}
	// The soak is only meaningful if the fast path actually carried the
	// load; a silent degradation to full rebuilds must fail loudly.
	if differentialRounds < edits/2 {
		t.Errorf("only %d of %d edits took the differential path", differentialRounds, edits)
	}
	t.Logf("soak: %d edits, %d differential, %d checkpoints",
		edits, differentialRounds, edits/checkpointEvery)
}
